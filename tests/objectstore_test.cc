#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <thread>

#include "objectstore/file_object_store.h"
#include "objectstore/memory_object_store.h"
#include "objectstore/object_store.h"
#include "objectstore/simulated_object_store.h"
#include "objectstore/tar_file.h"

namespace logstore::objectstore {
namespace {

enum class Backend { kMemory, kFile };

class ObjectStoreTest : public ::testing::TestWithParam<Backend> {
 protected:
  void SetUp() override {
    if (GetParam() == Backend::kMemory) {
      store_ = std::make_unique<MemoryObjectStore>();
    } else {
      dir_ = std::filesystem::temp_directory_path() /
             ("logstore_objtest_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name());
      std::filesystem::remove_all(dir_);
      auto opened = FileObjectStore::Open(dir_.string());
      ASSERT_TRUE(opened.ok()) << opened.status().ToString();
      store_ = std::move(opened).value();
    }
  }

  void TearDown() override {
    store_.reset();
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
  }

  std::unique_ptr<ObjectStore> store_;
  std::filesystem::path dir_;
};

TEST_P(ObjectStoreTest, PutGetRoundTrip) {
  ASSERT_TRUE(store_->Put("tenant0/block1.tar", "hello-logstore").ok());
  auto got = store_->Get("tenant0/block1.tar");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "hello-logstore");
}

TEST_P(ObjectStoreTest, GetMissingIsNotFound) {
  auto got = store_->Get("nope");
  EXPECT_TRUE(got.status().IsNotFound());
}

TEST_P(ObjectStoreTest, PutOverwrites) {
  ASSERT_TRUE(store_->Put("k", "v1").ok());
  ASSERT_TRUE(store_->Put("k", "v2-longer").ok());
  EXPECT_EQ(*store_->Get("k"), "v2-longer");
}

TEST_P(ObjectStoreTest, RangeReads) {
  ASSERT_TRUE(store_->Put("k", "0123456789").ok());
  EXPECT_EQ(*store_->GetRange("k", 0, 4), "0123");
  EXPECT_EQ(*store_->GetRange("k", 5, 3), "567");
  // Short read at end of object.
  EXPECT_EQ(*store_->GetRange("k", 8, 100), "89");
  // Offset past end is an error.
  EXPECT_FALSE(store_->GetRange("k", 11, 1).ok());
}

TEST_P(ObjectStoreTest, HeadReportsSize) {
  ASSERT_TRUE(store_->Put("k", "12345").ok());
  auto size = store_->Head("k");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 5u);
  EXPECT_TRUE(store_->Head("missing").status().IsNotFound());
}

TEST_P(ObjectStoreTest, ListByPrefix) {
  ASSERT_TRUE(store_->Put("tenants/1/a", "x").ok());
  ASSERT_TRUE(store_->Put("tenants/1/b", "x").ok());
  ASSERT_TRUE(store_->Put("tenants/2/a", "x").ok());
  ASSERT_TRUE(store_->Put("other/z", "x").ok());

  auto keys = store_->List("tenants/1/");
  ASSERT_TRUE(keys.ok());
  ASSERT_EQ(keys->size(), 2u);
  EXPECT_EQ((*keys)[0], "tenants/1/a");
  EXPECT_EQ((*keys)[1], "tenants/1/b");

  auto all = store_->List("");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 4u);
}

TEST_P(ObjectStoreTest, DeleteRemovesObject) {
  ASSERT_TRUE(store_->Put("k", "v").ok());
  ASSERT_TRUE(store_->Delete("k").ok());
  EXPECT_TRUE(store_->Get("k").status().IsNotFound());
  // Deleting a missing key is idempotent.
  EXPECT_TRUE(store_->Delete("k").ok());
}

TEST_P(ObjectStoreTest, StatsTrackTraffic) {
  ASSERT_TRUE(store_->Put("k", "12345678").ok());
  store_->Get("k");
  store_->GetRange("k", 0, 4);
  EXPECT_EQ(store_->stats().puts.load(), 1u);
  EXPECT_EQ(store_->stats().gets.load(), 1u);
  EXPECT_EQ(store_->stats().range_gets.load(), 1u);
  EXPECT_EQ(store_->stats().bytes_written.load(), 8u);
  EXPECT_EQ(store_->stats().bytes_read.load(), 12u);
}

INSTANTIATE_TEST_SUITE_P(Backends, ObjectStoreTest,
                         ::testing::Values(Backend::kMemory, Backend::kFile),
                         [](const auto& info) {
                           return info.param == Backend::kMemory ? "Memory"
                                                                 : "File";
                         });

TEST(FileObjectStoreTest, RejectsPathEscape) {
  auto dir = std::filesystem::temp_directory_path() / "logstore_escape_test";
  std::filesystem::remove_all(dir);
  auto store = FileObjectStore::Open(dir.string());
  ASSERT_TRUE(store.ok());
  EXPECT_FALSE((*store)->Put("../evil", "x").ok());
  EXPECT_FALSE((*store)->Put("/abs", "x").ok());
  EXPECT_FALSE((*store)->Get("a/../../b").ok());
  std::filesystem::remove_all(dir);
}

TEST(FileObjectStoreTest, PersistsAcrossReopen) {
  auto dir = std::filesystem::temp_directory_path() / "logstore_reopen_test";
  std::filesystem::remove_all(dir);
  {
    auto store = FileObjectStore::Open(dir.string());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("t/block", "durable").ok());
  }
  {
    auto store = FileObjectStore::Open(dir.string());
    ASSERT_TRUE(store.ok());
    EXPECT_EQ(*(*store)->Get("t/block"), "durable");
  }
  std::filesystem::remove_all(dir);
}

TEST(TarFileTest, RoundTripMembers) {
  TarWriter writer;
  ASSERT_TRUE(writer.AddMember("meta", "metadata-bytes").ok());
  ASSERT_TRUE(writer.AddMember("index/ip", "ip-index").ok());
  ASSERT_TRUE(writer.AddMember("data/col0", std::string(1000, 'd')).ok());
  EXPECT_EQ(writer.member_count(), 3u);
  const std::string package = writer.Finish();

  auto reader = TarReader::Parse(package);
  ASSERT_TRUE(reader.ok());
  ASSERT_EQ(reader->members().size(), 3u);

  for (const char* name : {"meta", "index/ip", "data/col0"}) {
    auto member = reader->Find(name);
    ASSERT_TRUE(member.ok()) << name;
    EXPECT_LE(member->offset + member->size, package.size());
  }
  auto meta = reader->Find("meta");
  EXPECT_EQ(package.substr(meta->offset, meta->size), "metadata-bytes");
  auto data = reader->Find("data/col0");
  EXPECT_EQ(package.substr(data->offset, data->size), std::string(1000, 'd'));
}

TEST(TarFileTest, RejectsDuplicateMember) {
  TarWriter writer;
  ASSERT_TRUE(writer.AddMember("a", "1").ok());
  EXPECT_TRUE(writer.AddMember("a", "2").IsAlreadyExists());
}

TEST(TarFileTest, FindMissingMember) {
  TarWriter writer;
  writer.AddMember("a", "1");
  auto reader = TarReader::Parse(writer.Finish());
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader->Find("b").status().IsNotFound());
  EXPECT_TRUE(reader->Contains("a"));
  EXPECT_FALSE(reader->Contains("b"));
}

TEST(TarFileTest, TwoPhaseHeaderFetch) {
  // Simulates the ranged-read protocol against an object store: fetch the
  // fixed prologue, learn the header size, fetch the manifest exactly.
  TarWriter writer;
  writer.AddMember("x", std::string(500, 'x'));
  writer.AddMember("y", std::string(300, 'y'));
  const std::string package = writer.Finish();

  MemoryObjectStore store;
  ASSERT_TRUE(store.Put("block.tar", package).ok());

  auto prologue = store.GetRange("block.tar", 0, TarReader::kPrologueSize);
  ASSERT_TRUE(prologue.ok());
  auto header_size = TarReader::HeaderSize(*prologue);
  ASSERT_TRUE(header_size.ok());
  ASSERT_LT(*header_size, package.size());

  auto head = store.GetRange("block.tar", 0, *header_size);
  ASSERT_TRUE(head.ok());
  auto reader = TarReader::Parse(*head);
  ASSERT_TRUE(reader.ok());

  auto y = reader->Find("y");
  ASSERT_TRUE(y.ok());
  auto y_data = store.GetRange("block.tar", y->offset, y->size);
  ASSERT_TRUE(y_data.ok());
  EXPECT_EQ(*y_data, std::string(300, 'y'));
}

TEST(TarFileTest, CorruptionDetected) {
  EXPECT_FALSE(TarReader::Parse(Slice("short")).ok());
  std::string bad(64, 'Z');
  EXPECT_FALSE(TarReader::Parse(bad).ok());
  EXPECT_FALSE(TarReader::HeaderSize(Slice("tiny")).ok());
}

TEST(TarFileTest, EmptyPackage) {
  TarWriter writer;
  const std::string package = writer.Finish();
  auto reader = TarReader::Parse(package);
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader->members().empty());
}

TEST(SimulatedObjectStoreTest, ChargesLatencyModel) {
  SimulatedStoreOptions options;
  options.first_byte_latency_us = 1000;
  options.bandwidth_bytes_per_us = 1.0;  // 1 byte per us
  options.time_scale = 0.0;              // account, don't sleep
  SimulatedObjectStore store(std::make_unique<MemoryObjectStore>(), options);

  ASSERT_TRUE(store.Put("k", std::string(500, 'x')).ok());
  EXPECT_EQ(store.charged_micros(), 1500u);  // 1000 + 500/1.0

  auto got = store.Get("k");  // Head (0 bytes) folded into the get charge
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(store.charged_micros(), 1500u + 1000u + 500u);
}

TEST(SimulatedObjectStoreTest, SleepsWhenScaled) {
  SimulatedStoreOptions options;
  options.first_byte_latency_us = 2000;
  options.bandwidth_bytes_per_us = 1000.0;
  options.time_scale = 1.0;
  ManualClock clock;
  SimulatedObjectStore store(std::make_unique<MemoryObjectStore>(), options,
                             &clock);
  ASSERT_TRUE(store.Put("k", "v").ok());
  EXPECT_EQ(clock.NowMicros(), 2000);
}

TEST(SimulatedObjectStoreTest, ConcurrencyLimitEnforced) {
  SimulatedStoreOptions options;
  options.first_byte_latency_us = 20000;  // 20ms per op
  options.bandwidth_bytes_per_us = 1e9;
  options.max_concurrent_requests = 2;
  options.time_scale = 1.0;
  SimulatedObjectStore store(std::make_unique<MemoryObjectStore>(), options);
  ASSERT_TRUE(store.Put("k", "v").ok());

  // 4 gets with 2 slots at 20ms each should take >= ~40ms wall time.
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] { store.Get("k"); });
  }
  for (auto& t : threads) t.join();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_GE(elapsed, 40);
}

}  // namespace
}  // namespace logstore::objectstore
