// Fleet-scale chaos harness for the autonomous control plane.
//
// A durable replicated deployment of CHAOS_WORKERS workers runs with the
// background monitor thread ON while the test thread drives Zipfian tenant
// traffic and a continuous seeded fault loop: process kills (with WAL crash
// mangling), rejoins, replica sync errors (the ENOSPC/wedged-journal case)
// and replica partitions. Nobody calls RunControlCycle by hand — every
// repair in the run is the monitor walking the escalation ladder on its
// own.
//
// The promises asserted:
//   - zero acked-row loss: every marker whose Write() was acknowledged is
//     visible at the end (kDropUnsynced/kTornWrite crash modes only, so no
//     failover may legally declare tail_lost — the stats must agree);
//   - placement invariants at every checkpoint epoch: all shards owned by
//     live workers, all routes valid and targeting live workers, the
//     placement epoch monotonically non-decreasing;
//   - convergence: once the faults stop, the fleet returns to all workers
//     alive and able to ack, with rejoined workers re-seeded with shards;
//   - the ladder actually ran: the chaos script guarantees at least one
//     in-place replica recovery and at least one whole-worker failover.
//
// CHAOS_WORKERS / CHAOS_EVENTS / CHAOS_SEEDS size the run; local defaults
// stay small so tier-1 stays fast, CI raises them (including an N=100
// fleet, ISSUE acceptance).

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/controller.h"
#include "common/metrics.h"
#include "common/random.h"
#include "consensus/durable_log.h"
#include "objectstore/memory_object_store.h"
#include "test_env.h"
#include "workload/zipfian.h"

namespace logstore::cluster {
namespace {

namespace fs = std::filesystem;

using consensus::CrashMode;
using consensus::SyncPolicy;
using logblock::RowBatch;
using logblock::Value;
using testenv::EnvInt;
using testenv::MarkerRow;
using testenv::Oracle;

// CHAOS_DEBUG=1 prints the fault script, for diagnosing a failing seed.
void DebugLog(const std::string& line) {
  static const bool enabled = EnvInt("CHAOS_DEBUG", 0) != 0;
  if (enabled) fprintf(stderr, "[chaos] %s\n", line.c_str());
}

class ChaosTest : public ::testing::Test {
 protected:
  void TearDown() override {
    if (cluster_ != nullptr) cluster_->StopMonitor();
    cluster_.reset();
    store_.reset();
    registry_.reset();  // after the cluster: its cells are still referenced
    if (!dir_.empty()) fs::remove_all(dir_);
  }

  void OpenCluster(uint32_t num_workers, uint64_t seed) {
    dir_ = testenv::UniqueTempDir("chaos", seed);
    // Fresh registry per deployment, so the post-storm assertions compare
    // this run's counters and nothing from earlier seeds.
    registry_ = std::make_unique<metrics::MetricRegistry>();
    store_ = std::make_unique<objectstore::MemoryObjectStore>(registry_.get());
    ClusterDeploymentOptions options;
    options.num_workers = num_workers;
    options.shards_per_worker = 2;
    options.worker.schema = logblock::RequestLogSchema();
    options.worker.replicated = true;
    options.worker.wal_dir = dir_.string();
    options.worker.wal.sync_policy =
        seed % 2 == 0 ? SyncPolicy::kOnSync : SyncPolicy::kPerRecord;
    options.worker.wal.segment_target_bytes = 512 + (seed % 5) * 256;
    options.registry = registry_.get();
    auto cluster = Cluster::Open(store_.get(), options);
    ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
    cluster_ = std::move(cluster).value();
  }

  // The worker currently serving `tenant` (first shard of its route).
  uint32_t WorkerOfTenant(uint64_t tenant) {
    cluster_->controller()->EnsureTenantRoute(tenant);
    const flow::RouteTable routes = cluster_->controller()->routes();
    const auto* weights = routes.Get(tenant);
    EXPECT_NE(weights, nullptr);
    EXPECT_FALSE(weights->empty());
    return cluster_->controller()->WorkerForShard(weights->begin()->first);
  }

  // Injects a fault through a Worker* with the monitor paused: the monitor
  // could otherwise fail the worker over and free the object mid-call.
  template <typename Fn>
  void WithWorkerPaused(uint32_t id, Fn fn) {
    cluster_->PauseMonitor();
    Worker* worker = cluster_->worker(id);
    if (worker != nullptr) fn(worker);
    cluster_->ResumeMonitor();
  }

  uint32_t LiveWorkers() const {
    uint32_t live = 0;
    for (uint32_t id = 0; id < cluster_->num_workers(); ++id) {
      if (cluster_->worker(id) != nullptr) ++live;
    }
    return live;
  }

  // One write attempt with a unique marker. Acked -> oracle (must be
  // visible forever). Failed -> maybe (a write refused mid-commit has an
  // indeterminate fate: the rows may have been replicated before the error
  // surfaced, and at-least-once tail replay may legally resurrect them).
  // Unavailability is retried briefly — the monitor repairs routes in the
  // background, the client just backs off.
  void WriteOne(uint64_t tenant) {
    const std::string marker = "chaos-m" + std::to_string(next_marker_++);
    const int64_t ts = 1000 + static_cast<int64_t>(next_marker_);
    for (int attempt = 0; attempt < 200; ++attempt) {
      const Status status = cluster_->Write(tenant, MarkerRow(tenant, ts, marker));
      if (status.ok()) {
        oracle_[tenant].insert(marker);
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    maybe_[tenant].insert(marker);
  }

  // Placement/route invariants at a quiescent point (monitor paused by the
  // caller): every shard and every route targets a live worker, weights
  // are sane, and the epoch never moved backwards.
  void CheckPlacement(const std::string& context) {
    Controller* controller = cluster_->controller();
    const uint64_t epoch = controller->placement_epoch();
    EXPECT_GE(epoch, last_epoch_) << context << ": placement epoch went back";
    last_epoch_ = epoch;
    for (uint32_t s = 0; s < controller->num_shards(); ++s) {
      EXPECT_TRUE(controller->WorkerAlive(controller->WorkerForShard(s)))
          << context << ": shard " << s << " owned by dead worker "
          << controller->WorkerForShard(s);
    }
    const flow::RouteTable routes = controller->routes();
    std::string error;
    EXPECT_TRUE(routes.Validate(1e-6, &error)) << context << ": " << error;
    for (const auto& [tenant, weights] : routes.rules()) {
      for (const auto& [shard, weight] : weights) {
        (void)weight;
        EXPECT_TRUE(controller->WorkerAlive(controller->WorkerForShard(shard)))
            << context << ": tenant " << tenant << " routed to shard "
            << shard << " on dead worker";
      }
    }
  }

  // Kills a worker after mangling its replica WALs the way a real crash
  // could have. Only loss-free modes: acked rows are always on the synced
  // prefix, so no failover in this suite may declare the tail lost.
  void CrashAndKill(uint32_t victim, Random* rng) {
    cluster_->PauseMonitor();  // SimulateCrash mutates WAL files unfenced
    Worker* worker = cluster_->worker(victim);
    if (worker == nullptr) {
      cluster_->ResumeMonitor();
      return;
    }
    const CrashMode mode =
        rng->Uniform(2) == 0 ? CrashMode::kDropUnsynced : CrashMode::kTornWrite;
    for (int node = 0; node < 3; ++node) {
      ASSERT_TRUE(worker->wal(node)->SimulateCrash(mode, rng->Next()).ok());
    }
    ASSERT_TRUE(cluster_->KillWorker(victim).ok());
    cluster_->ResumeMonitor();
  }

  // Waits for the monitor to converge the fleet back to all-healthy,
  // rejoining any failed-over worker along the way. Returns true on
  // convergence.
  bool AwaitConvergence(int timeout_ms) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      // Rejoin every worker the monitor has finished failing over.
      for (uint32_t id = 0; id < cluster_->num_workers(); ++id) {
        if (cluster_->worker(id) == nullptr &&
            !cluster_->controller()->WorkerAlive(id)) {
          const Status status = cluster_->RestartWorker(id);
          EXPECT_TRUE(status.ok()) << status.ToString();
        }
      }
      bool healthy = true;
      for (const WorkerHealth& health : cluster_->HarvestHealth()) {
        if (!health.CanAck()) {
          healthy = false;
          break;
        }
      }
      // Converged = every worker alive AND carrying load: a freshly
      // rejoined worker owns zero shards until the monitor's rebalance-back
      // pass drains some onto it, so waiting for ownership here guarantees
      // the drain actually ran before the test freezes the monitor.
      if (healthy && LiveWorkers() == cluster_->num_workers()) {
        bool all_loaded = true;
        for (uint32_t id = 0; id < cluster_->num_workers(); ++id) {
          if (cluster_->controller()->ShardsOfWorker(id).empty()) {
            all_loaded = false;
            break;
          }
        }
        if (all_loaded) return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
  }

  std::unique_ptr<metrics::MetricRegistry> registry_;
  fs::path dir_;
  std::unique_ptr<objectstore::MemoryObjectStore> store_;
  std::unique_ptr<Cluster> cluster_;
  Oracle oracle_;
  Oracle maybe_;
  uint64_t next_marker_ = 0;
  uint64_t last_epoch_ = 0;
};

TEST_F(ChaosTest, FleetSurvivesContinuousFaultsUnderMonitor) {
  const uint32_t num_workers =
      static_cast<uint32_t>(EnvInt("CHAOS_WORKERS", 12));
  const int num_events = EnvInt("CHAOS_EVENTS", 30);
  const int num_seeds = EnvInt("CHAOS_SEEDS", 1);
  const uint64_t num_tenants = std::max<uint64_t>(8, num_workers);

  for (int s = 0; s < num_seeds; ++s) {
    const uint64_t seed = 1000 + static_cast<uint64_t>(s);
    SCOPED_TRACE("seed " + std::to_string(seed));
    TearDown();
    oracle_.clear();
    maybe_.clear();
    last_epoch_ = 0;
    OpenCluster(num_workers, seed);
    if (::testing::Test::HasFatalFailure()) return;

    Random rng(seed);
    workload::ZipfianGenerator tenants(num_tenants, 0.9, seed);

    // Seed every tenant's route and some baseline data before the storm.
    for (uint64_t t = 1; t <= num_tenants; ++t) WriteOne(t);
    ASSERT_TRUE(cluster_->StartMonitor({/*poll_interval_ms=*/5}).ok());

    for (int event = 0; event < num_events; ++event) {
      // Traffic between faults, Zipfian-skewed across tenants.
      for (int i = 0; i < 8; ++i) WriteOne(1 + tenants.Next());
      if (::testing::Test::HasFatalFailure()) return;

      // The first two events are scripted so every run provably exercises
      // both ladder rungs: a wedged replica on a worker that is guaranteed
      // to see traffic (repaired in place), then a process kill (failed
      // over). The rest are drawn from the fault mix.
      const uint32_t roll = event == 0 ? 2 : event == 1 ? 0 : rng.Uniform(5);
      switch (roll) {
        case 0: {  // kill a worker (keep a live majority of the fleet)
          if (LiveWorkers() <= num_workers / 2 + 1) break;
          const uint32_t victim = rng.Uniform(num_workers);
          DebugLog("event " + std::to_string(event) + ": kill worker " +
                   std::to_string(victim));
          CrashAndKill(victim, &rng);
          break;
        }
        case 1: {  // rejoin a failed-over worker mid-storm
          for (uint32_t id = 0; id < num_workers; ++id) {
            if (cluster_->worker(id) == nullptr &&
                !cluster_->controller()->WorkerAlive(id)) {
              DebugLog("event " + std::to_string(event) + ": rejoin worker " +
                       std::to_string(id));
              EXPECT_TRUE(cluster_->RestartWorker(id).ok());
              break;
            }
          }
          break;
        }
        case 2: {  // wedge one replica's journal (ENOSPC-style sync error)
          // On the scripted first event, target the worker serving tenant
          // 1 and latch the armed error with a write, so the monitor
          // observably repairs at least one replica every run.
          const uint32_t target =
              event == 0 ? WorkerOfTenant(1) : rng.Uniform(num_workers);
          DebugLog("event " + std::to_string(event) + ": wedge worker " +
                   std::to_string(target));
          WithWorkerPaused(target, [&](Worker* worker) {
            worker->InjectReplicaSyncError(static_cast<int>(rng.Uniform(3)))
                .IgnoreError();
          });
          if (event == 0) WriteOne(1);  // trip the armed sync error
          break;
        }
        case 3: {  // partition one replica off its group
          const uint32_t target = rng.Uniform(num_workers);
          DebugLog("event " + std::to_string(event) + ": partition worker " +
                   std::to_string(target));
          WithWorkerPaused(target, [&](Worker* worker) {
            worker->PartitionReplica(static_cast<int>(rng.Uniform(3)))
                .IgnoreError();
          });
          break;
        }
        case 4: {  // archive pressure: builder pass against live traffic
          DebugLog("event " + std::to_string(event) + ": build pass");
          cluster_->RunBuildPass().status().IgnoreError();
          break;
        }
      }
      if (::testing::Test::HasFatalFailure()) return;

      // Periodic invariant checkpoint at a quiescent control plane.
      if (event % 10 == 9) {
        cluster_->PauseMonitor();
        CheckPlacement("checkpoint event " + std::to_string(event));
        cluster_->ResumeMonitor();
      }
    }

    // Storm over: the fleet must converge back to all-healthy with every
    // worker rejoined, without any manual control cycle.
    ASSERT_TRUE(AwaitConvergence(/*timeout_ms=*/30000))
        << "fleet did not converge to all-healthy";
    cluster_->PauseMonitor();
    CheckPlacement("converged");

    const MonitorStats stats = cluster_->monitor_stats();
    EXPECT_GT(stats.cycles, 0u);
    EXPECT_EQ(stats.cycle_errors, 0u);
    EXPECT_EQ(stats.tails_lost, 0u)
        << "a loss-free crash mode declared a tail lost";
    EXPECT_GT(stats.replica_recoveries, 0u)
        << "the in-place repair rung never ran";
    EXPECT_GT(stats.failovers, 0u) << "the failover rung never ran";
    EXPECT_GT(stats.rebalanced_shards, 0u)
        << "no shards were drained back onto rejoined workers";

    // The monitor's registry mirrors are dual-written under the same lock
    // as MonitorStats; with the monitor paused (quiescent), every ladder
    // rung's counter must match the harness-observed legacy value exactly.
    const auto snap = registry_->SnapshotMap();
    EXPECT_EQ(snap.at("monitor.cycles"), static_cast<int64_t>(stats.cycles));
    EXPECT_EQ(snap.at("monitor.cycle_errors"),
              static_cast<int64_t>(stats.cycle_errors));
    EXPECT_EQ(snap.at("monitor.failovers"),
              static_cast<int64_t>(stats.failovers));
    EXPECT_EQ(snap.at("monitor.replica_recoveries"),
              static_cast<int64_t>(stats.replica_recoveries));
    EXPECT_EQ(snap.at("monitor.election_waits"),
              static_cast<int64_t>(stats.election_waits));
    EXPECT_EQ(snap.at("monitor.skipped_workers"),
              static_cast<int64_t>(stats.skipped_workers));
    EXPECT_EQ(snap.at("monitor.rebalanced_shards"),
              static_cast<int64_t>(stats.rebalanced_shards));
    EXPECT_EQ(snap.at("monitor.tails_lost"),
              static_cast<int64_t>(stats.tails_lost));
    EXPECT_EQ(snap.at("monitor.total_cycle_us"), stats.total_cycle_us);

    // Zero acked-row loss, nothing fabricated beyond indeterminate writes.
    for (const auto& [tenant, expected] : oracle_) {
      query::LogQuery query;
      query.tenant_id = tenant;
      query.select_columns = {"log"};
      auto result = cluster_->Query(query);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      std::multiset<std::string> visible;
      for (const auto& row : result->rows) visible.insert(row[0].s);
      for (const auto& marker : expected) {
        EXPECT_GT(visible.count(marker), 0u)
            << "tenant " << tenant << " lost acked " << marker;
        if (visible.count(marker) == 0) {
          // Classify for debugging: durability loss vs scatter-read bug.
          auto single = cluster_->QuerySingleEngine(query);
          bool in_single = false;
          if (single.ok()) {
            for (const auto& row : single->rows) {
              if (row[0].s == marker) in_single = true;
            }
          }
          DebugLog("lost " + marker + " tenant " + std::to_string(tenant) +
                   ": single-engine sees it: " + (in_single ? "YES" : "no"));
        }
      }
      const auto maybe_it = maybe_.find(tenant);
      for (const auto& marker : visible) {
        const bool allowed =
            expected.count(marker) > 0 ||
            (maybe_it != maybe_.end() && maybe_it->second.count(marker) > 0);
        EXPECT_TRUE(allowed)
            << "tenant " << tenant << " fabricated " << marker;
      }
    }
    cluster_->StopMonitor();
  }
}

}  // namespace
}  // namespace logstore::cluster
