#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "logblock/format.h"
#include "logblock/logblock_map.h"
#include "logblock/logblock_reader.h"
#include "logblock/logblock_writer.h"
#include "logblock/row_batch.h"
#include "logblock/schema.h"

namespace logstore::logblock {
namespace {

RowBatch MakeRequestLogBatch(uint32_t rows, uint64_t seed, int64_t ts_base) {
  RowBatch batch(RequestLogSchema());
  Random rng(seed);
  for (uint32_t i = 0; i < rows; ++i) {
    const bool fail = rng.OneIn(20);
    batch.AddRow({
        Value::Int64(static_cast<int64_t>(rng.Uniform(4))),    // tenant_id
        Value::Int64(ts_base + i * 1000),                      // ts
        Value::String("192.168.0." + std::to_string(rng.Uniform(32))),
        Value::Int64(static_cast<int64_t>(rng.Uniform(500))),  // latency
        Value::String(fail ? "true" : "false"),
        Value::String("GET /api/v" + std::to_string(rng.Uniform(3)) +
                      "/resource status " + (fail ? "error" : "ok")),
    });
  }
  return batch;
}

Result<std::unique_ptr<LogBlockReader>> BuildAndOpen(
    const RowBatch& batch, const LogBlockWriterOptions& options = {}) {
  auto built = BuildLogBlock(batch, /*tenant_id=*/42, options);
  if (!built.ok()) return built.status();
  return LogBlockReader::Open(
      std::make_shared<StringSource>(std::move(built->data)));
}

TEST(SchemaTest, EncodeDecodeRoundTrip) {
  Schema schema = RequestLogSchema();
  std::string buf;
  schema.EncodeTo(&buf);
  Slice in(buf);
  auto decoded = Schema::DecodeFrom(&in);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(*decoded == schema);
  EXPECT_TRUE(in.empty());
}

TEST(SchemaTest, FindColumn) {
  Schema schema = RequestLogSchema();
  EXPECT_EQ(schema.FindColumn("ts"), 1);
  EXPECT_EQ(schema.FindColumn("log"), 5);
  EXPECT_EQ(schema.FindColumn("missing"), -1);
}

TEST(SchemaTest, IndexTypeFollowsColumnType) {
  Schema schema = RequestLogSchema();
  EXPECT_EQ(schema.column(0).index_type(), IndexType::kBkd);       // int64
  EXPECT_EQ(schema.column(2).index_type(), IndexType::kInverted);  // string
  EXPECT_EQ(schema.column(3).index_type(), IndexType::kNone);      // !indexed
}

TEST(SchemaTest, DecodeRejectsCorruption) {
  Slice empty("");
  EXPECT_FALSE(Schema::DecodeFrom(&empty).ok());
  std::string bad = "\x02garbage";
  Slice in(bad);
  EXPECT_FALSE(Schema::DecodeFrom(&in).ok());
}

TEST(RowBatchTest, ColumnMajorAccess) {
  RowBatch batch(RequestLogSchema());
  batch.AddRow({Value::Int64(7), Value::Int64(1000), Value::String("1.2.3.4"),
                Value::Int64(55), Value::String("false"),
                Value::String("hello world")});
  EXPECT_EQ(batch.num_rows(), 1u);
  EXPECT_EQ(batch.Int64At(0, 0), 7);
  EXPECT_EQ(batch.StringAt(2, 0), "1.2.3.4");
  EXPECT_EQ(batch.ValueAt(3, 0), Value::Int64(55));
  EXPECT_EQ(batch.ValueAt(5, 0), Value::String("hello world"));
  EXPECT_GT(batch.ApproximateBytes(), 0u);
}

TEST(LogBlockMetaTest, EncodeDecodeRoundTrip) {
  LogBlockMeta meta;
  meta.schema = RequestLogSchema();
  meta.row_count = 100;
  meta.codec = compress::CodecType::kLzFast;
  meta.tenant_id = 99;
  meta.min_ts = -5;
  meta.max_ts = 12345;
  meta.columns.resize(meta.schema.num_columns());
  meta.columns[0].index_type = IndexType::kBkd;
  meta.columns[0].index_size = 77;
  meta.columns[0].int_sma.Update(3);
  ColumnBlockMeta block;
  block.row_count = 100;
  block.first_row = 0;
  block.offset = 0;
  block.size = 512;
  block.int_sma.Update(3);
  meta.columns[0].blocks.push_back(block);

  std::string buf;
  meta.EncodeTo(&buf);
  Slice in(buf);
  auto decoded = LogBlockMeta::DecodeFrom(&in);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->row_count, 100u);
  EXPECT_EQ(decoded->codec, compress::CodecType::kLzFast);
  EXPECT_EQ(decoded->tenant_id, 99u);
  EXPECT_EQ(decoded->min_ts, -5);
  EXPECT_EQ(decoded->max_ts, 12345);
  ASSERT_EQ(decoded->columns.size(), meta.schema.num_columns());
  EXPECT_EQ(decoded->columns[0].index_type, IndexType::kBkd);
  EXPECT_EQ(decoded->columns[0].index_size, 77u);
  ASSERT_EQ(decoded->columns[0].blocks.size(), 1u);
  EXPECT_EQ(decoded->columns[0].blocks[0].size, 512u);
}

TEST(LogBlockMetaTest, DecodeRejectsGarbage) {
  Slice in("not-a-meta");
  EXPECT_FALSE(LogBlockMeta::DecodeFrom(&in).ok());
}

TEST(LogBlockWriterTest, RejectsEmptyBatch) {
  RowBatch empty(RequestLogSchema());
  EXPECT_TRUE(BuildLogBlock(empty, 1).status().IsInvalidArgument());
}

TEST(LogBlockWriterTest, MetaDescribesData) {
  const RowBatch batch = MakeRequestLogBatch(1000, 5, 1'000'000);
  auto built = BuildLogBlock(batch, 42, {.rows_per_block = 128});
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  const LogBlockMeta& meta = built->meta;
  EXPECT_EQ(meta.row_count, 1000u);
  EXPECT_EQ(meta.tenant_id, 42u);
  EXPECT_EQ(meta.min_ts, 1'000'000);
  EXPECT_EQ(meta.max_ts, 1'000'000 + 999 * 1000);
  // 1000 rows / 128 per block = 8 blocks per column.
  for (const ColumnMeta& col : meta.columns) {
    EXPECT_EQ(col.blocks.size(), 8u);
  }
  // latency (3) and ts (1) are unindexed (block SMA serves them); others
  // have indexes.
  EXPECT_EQ(meta.columns[3].index_type, IndexType::kNone);
  EXPECT_EQ(meta.columns[3].index_size, 0u);
  EXPECT_EQ(meta.columns[1].index_type, IndexType::kNone);
  EXPECT_EQ(meta.columns[0].index_type, IndexType::kBkd);
  EXPECT_GT(meta.columns[0].index_size, 0u);
  EXPECT_EQ(meta.columns[2].index_type, IndexType::kInverted);
  EXPECT_GT(meta.columns[2].index_size, 0u);
}

TEST(LogBlockReaderTest, OpenAndReadBack) {
  const RowBatch batch = MakeRequestLogBatch(500, 3, 0);
  auto reader = BuildAndOpen(batch, {.rows_per_block = 100});
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();

  EXPECT_EQ((*reader)->num_rows(), 500u);
  EXPECT_TRUE((*reader)->schema() == batch.schema());

  // Read every block of every column and compare all values.
  for (size_t c = 0; c < batch.schema().num_columns(); ++c) {
    uint32_t row = 0;
    const size_t n_blocks = (*reader)->meta().columns[c].blocks.size();
    for (size_t b = 0; b < n_blocks; ++b) {
      auto decoded = (*reader)->ReadColumnBlock(c, b);
      ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
      EXPECT_EQ(decoded->first_row, row);
      for (uint32_t i = 0; i < decoded->row_count(); ++i, ++row) {
        if (batch.schema().column(c).type == ColumnType::kInt64) {
          EXPECT_EQ(decoded->ints[i], batch.Int64At(c, row));
        } else {
          EXPECT_EQ(decoded->strs[i], batch.StringAt(c, row));
        }
      }
    }
    EXPECT_EQ(row, 500u);
  }
}

TEST(LogBlockReaderTest, ReadValuesAtPicksSparseRows) {
  const RowBatch batch = MakeRequestLogBatch(1000, 9, 0);
  auto reader = BuildAndOpen(batch, {.rows_per_block = 64});
  ASSERT_TRUE(reader.ok());

  const std::vector<uint32_t> rows = {0, 1, 63, 64, 500, 999};
  auto values = (*reader)->ReadValuesAt(5, rows);  // "log" column
  ASSERT_TRUE(values.ok());
  ASSERT_EQ(values->size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ((*values)[i].s, batch.StringAt(5, rows[i]));
  }
}

TEST(LogBlockReaderTest, BkdIndexAnswersRangeQueries) {
  RowBatch batch(RequestLogSchema());
  for (uint32_t i = 0; i < 300; ++i) {
    batch.AddRow({Value::Int64(i * 10),  // tenant_id carries the BKD index
                  Value::Int64(i), Value::String("10.0.0.1"),
                  Value::Int64(i % 100), Value::String("false"),
                  Value::String("msg")});
  }
  auto reader = BuildAndOpen(batch, {.rows_per_block = 50});
  ASSERT_TRUE(reader.ok());

  auto bkd = (*reader)->BkdIndex(0);
  ASSERT_TRUE(bkd.ok());
  const auto rows = (*bkd)->QueryRange(100, 149, 300).ToVector();
  EXPECT_EQ(rows, (std::vector<uint32_t>{10, 11, 12, 13, 14}));

  // Unindexed columns have no BKD index (ts relies on block SMA).
  EXPECT_TRUE((*reader)->BkdIndex(1).status().IsNotFound());
  EXPECT_TRUE((*reader)->BkdIndex(3).status().IsNotFound());
  // String column has inverted, not BKD.
  EXPECT_TRUE((*reader)->BkdIndex(2).status().IsNotFound());
}

TEST(LogBlockReaderTest, InvertedIndexAnswersExactAndTokenQueries) {
  RowBatch batch(RequestLogSchema());
  for (uint32_t i = 0; i < 100; ++i) {
    batch.AddRow({Value::Int64(7), Value::Int64(i),
                  Value::String(i % 2 == 0 ? "1.1.1.1" : "2.2.2.2"),
                  Value::Int64(0), Value::String("false"),
                  Value::String(i == 50 ? "rare timeout event" : "ok")});
  }
  auto reader = BuildAndOpen(batch);
  ASSERT_TRUE(reader.ok());

  auto ip_rows = (*reader)->InvertedLookupExact(2, "1.1.1.1");
  ASSERT_TRUE(ip_rows.ok());
  EXPECT_EQ(ip_rows->Count(), 50u);
  auto no_rows = (*reader)->InvertedLookupExact(2, "3.3.3.3");
  ASSERT_TRUE(no_rows.ok());
  EXPECT_EQ(no_rows->Count(), 0u);

  auto match = (*reader)->InvertedMatchAllTokens(5, "timeout");
  ASSERT_TRUE(match.ok());
  EXPECT_EQ(match->ToVector(), (std::vector<uint32_t>{50}));

  // The term dictionary is cached after first access.
  auto dict = (*reader)->InvertedDict(5);
  ASSERT_TRUE(dict.ok());
  auto again = (*reader)->InvertedDict(5);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().get(), dict.value().get());

  // Unindexed / wrong-kind columns: NotFound.
  EXPECT_TRUE((*reader)->InvertedDict(1).status().IsNotFound());
  EXPECT_TRUE(
      (*reader)->InvertedLookupExact(3, "x").status().IsNotFound());
}

TEST(LogBlockReaderTest, BlockIndexForRow) {
  const RowBatch batch = MakeRequestLogBatch(250, 1, 0);
  auto reader = BuildAndOpen(batch, {.rows_per_block = 100});
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(*(*reader)->BlockIndexForRow(0, 0), 0u);
  EXPECT_EQ(*(*reader)->BlockIndexForRow(0, 99), 0u);
  EXPECT_EQ(*(*reader)->BlockIndexForRow(0, 100), 1u);
  EXPECT_EQ(*(*reader)->BlockIndexForRow(0, 249), 2u);
  EXPECT_FALSE((*reader)->BlockIndexForRow(0, 250).ok());
}

TEST(LogBlockReaderTest, AllCodecsRoundTrip) {
  for (auto codec : {compress::CodecType::kNone, compress::CodecType::kLzFast,
                     compress::CodecType::kLzRatio}) {
    const RowBatch batch = MakeRequestLogBatch(200, 8, 0);
    auto reader = BuildAndOpen(batch, {.codec = codec, .rows_per_block = 64});
    ASSERT_TRUE(reader.ok());
    auto decoded = (*reader)->ReadColumnBlock(5, 0);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->strs[0], batch.StringAt(5, 0));
  }
}

TEST(LogBlockReaderTest, CompressionShrinksLogData) {
  const RowBatch batch = MakeRequestLogBatch(5000, 21, 0);
  auto none = BuildLogBlock(batch, 1, {.codec = compress::CodecType::kNone});
  auto ratio = BuildLogBlock(batch, 1, {.codec = compress::CodecType::kLzRatio});
  ASSERT_TRUE(none.ok());
  ASSERT_TRUE(ratio.ok());
  EXPECT_LT(ratio->data.size(), none->data.size() / 2);
}

TEST(LogBlockReaderTest, SelfContainedSurvivesRename) {
  // §3.2: a LogBlock "can still be resolved after being renamed or moved".
  // The reader needs nothing but the bytes: no external schema or catalog.
  const RowBatch batch = MakeRequestLogBatch(50, 2, 7000);
  auto built = BuildLogBlock(batch, 42);
  ASSERT_TRUE(built.ok());
  auto reader = LogBlockReader::Open(
      std::make_shared<StringSource>(built->data));  // no name, no catalog
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->meta().tenant_id, 42u);
  EXPECT_EQ((*reader)->schema().FindColumn("ip"), 2);
}

TEST(LogBlockReaderTest, CorruptPackageRejected) {
  auto r1 = LogBlockReader::Open(std::make_shared<StringSource>(""));
  EXPECT_FALSE(r1.ok());
  auto r2 = LogBlockReader::Open(
      std::make_shared<StringSource>(std::string(100, 'x')));
  EXPECT_FALSE(r2.ok());
}

TEST(LogBlockReaderTest, ChecksumCatchesDataCorruption) {
  const RowBatch batch = MakeRequestLogBatch(200, 4, 0);
  auto built = BuildLogBlock(batch, 1, {.rows_per_block = 64});
  ASSERT_TRUE(built.ok());

  // Flip one byte inside a column data chunk: decoding that block must
  // fail with Corruption (CRC), while other blocks stay readable.
  auto clean = LogBlockReader::Open(
      std::make_shared<StringSource>(built->data));
  ASSERT_TRUE(clean.ok());
  auto range = (*clean)->ColumnBlockRange(5, 1);
  ASSERT_TRUE(range.ok());

  std::string corrupted = built->data;
  corrupted[range->offset + range->size / 2] ^= 0x01;
  auto reader =
      LogBlockReader::Open(std::make_shared<StringSource>(corrupted));
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE((*reader)->ReadColumnBlock(5, 1).status().IsCorruption());
  EXPECT_TRUE((*reader)->ReadColumnBlock(5, 0).ok());  // other block fine
}

// Fuzz-style robustness sweep: flipping any single byte of a LogBlock
// package must never crash the reader — every path either still works or
// returns an error Status.
class LogBlockCorruptionFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(LogBlockCorruptionFuzzTest, SingleByteFlipsNeverCrash) {
  const RowBatch batch = MakeRequestLogBatch(150, 6, 0);
  auto built = BuildLogBlock(batch, 1, {.rows_per_block = 50});
  ASSERT_TRUE(built.ok());

  logstore::Random rng(static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 60; ++trial) {
    std::string corrupted = built->data;
    const size_t pos = rng.Uniform(corrupted.size());
    corrupted[pos] ^= static_cast<char>(1 + rng.Uniform(255));

    auto reader =
        LogBlockReader::Open(std::make_shared<StringSource>(corrupted));
    if (!reader.ok()) continue;  // rejected at open: fine
    // Exercise every read path; statuses may be errors, but no crashes.
    for (size_t c = 0; c < (*reader)->schema().num_columns(); ++c) {
      const size_t blocks = (*reader)->meta().columns[c].blocks.size();
      for (size_t b = 0; b < blocks && b < 3; ++b) {
        (void)(*reader)->ReadColumnBlock(c, b);
      }
      (void)(*reader)->BkdIndex(c);
      (void)(*reader)->InvertedLookupExact(c, "192.168.0.1");
      (void)(*reader)->InvertedMatchAllTokens(c, "status ok");
    }
    std::vector<uint32_t> rows = {0, 1, 50, 149};
    (void)(*reader)->ReadValuesAt(5, rows);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LogBlockCorruptionFuzzTest,
                         ::testing::Range(1, 6));

TEST(LogBlockMapTest, PruneByTenantAndTime) {
  LogBlockMap map;
  map.Add({.tenant_id = 0, .min_ts = 0, .max_ts = 99, .object_key = "a"});
  map.Add({.tenant_id = 0, .min_ts = 100, .max_ts = 199, .object_key = "b"});
  map.Add({.tenant_id = 1, .min_ts = 50, .max_ts = 150, .object_key = "c"});

  auto hits = map.Prune(0, 50, 120);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].object_key, "a");
  EXPECT_EQ(hits[1].object_key, "b");

  EXPECT_EQ(map.Prune(0, 200, 300).size(), 0u);
  EXPECT_EQ(map.Prune(1, 0, 60).size(), 1u);
  EXPECT_EQ(map.Prune(9, 0, 1000).size(), 0u);  // unknown tenant
}

TEST(LogBlockMapTest, ChronologicalOrderMaintained) {
  LogBlockMap map;
  map.Add({.tenant_id = 0, .min_ts = 200, .max_ts = 299, .object_key = "late"});
  map.Add({.tenant_id = 0, .min_ts = 0, .max_ts = 99, .object_key = "early"});
  auto blocks = map.TenantBlocks(0);
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0].object_key, "early");
  EXPECT_EQ(blocks[1].object_key, "late");
}

TEST(LogBlockMapTest, ExpirationRetiresOldBlocks) {
  LogBlockMap map;
  map.Add({.tenant_id = 0, .min_ts = 0, .max_ts = 99, .object_key = "old",
           .size_bytes = 10});
  map.Add({.tenant_id = 0, .min_ts = 100, .max_ts = 199, .object_key = "new",
           .size_bytes = 20});
  EXPECT_EQ(map.TenantBytes(0), 30u);

  auto expired = map.ExpireBefore(0, 100);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].object_key, "old");
  EXPECT_EQ(map.TenantBytes(0), 20u);
  EXPECT_EQ(map.TenantBlockCount(0), 1u);

  // Expiring everything removes the tenant.
  map.ExpireBefore(0, 1000);
  EXPECT_EQ(map.Tenants().size(), 0u);
}

TEST(LogBlockMapTest, EncodeDecodeRoundTrip) {
  LogBlockMap map;
  map.Add({.tenant_id = 3, .min_ts = -10, .max_ts = 10, .object_key = "k1",
           .size_bytes = 100, .row_count = 5});
  map.Add({.tenant_id = 7, .min_ts = 0, .max_ts = 50, .object_key = "k2",
           .size_bytes = 200, .row_count = 9});

  std::string buf;
  map.EncodeTo(&buf);
  LogBlockMap restored;
  Slice in(buf);
  ASSERT_TRUE(LogBlockMap::DecodeFrom(&in, &restored).ok());
  EXPECT_EQ(restored.TotalBlocks(), 2u);
  EXPECT_EQ(restored.TenantBytes(3), 100u);
  auto blocks = restored.TenantBlocks(7);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].object_key, "k2");
  EXPECT_EQ(blocks[0].row_count, 9u);
}

// Property sweep over block sizes: the reader must reconstruct the batch
// exactly regardless of block granularity.
class LogBlockRoundTripTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(LogBlockRoundTripTest, FullReconstruction) {
  const uint32_t rows_per_block = GetParam();
  const RowBatch batch = MakeRequestLogBatch(777, rows_per_block, 123);
  auto reader = BuildAndOpen(batch, {.rows_per_block = rows_per_block});
  ASSERT_TRUE(reader.ok());

  std::vector<uint32_t> all_rows(batch.num_rows());
  for (uint32_t i = 0; i < batch.num_rows(); ++i) all_rows[i] = i;
  for (size_t c = 0; c < batch.schema().num_columns(); ++c) {
    auto values = (*reader)->ReadValuesAt(c, all_rows);
    ASSERT_TRUE(values.ok());
    for (uint32_t r = 0; r < batch.num_rows(); ++r) {
      EXPECT_TRUE((*values)[r] == batch.ValueAt(c, r))
          << "col " << c << " row " << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, LogBlockRoundTripTest,
                         ::testing::Values(1, 7, 64, 256, 777, 10000));

}  // namespace
}  // namespace logstore::logblock
