#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "core/logstore.h"
#include "objectstore/file_object_store.h"
#include "query/aggregation.h"
#include "workload/loggen.h"
#include "workload/querygen.h"
#include "workload/zipfian.h"

namespace logstore {
namespace {

using logblock::RowBatch;
using logblock::Value;

RowBatch OneRow(uint64_t tenant, int64_t ts, const std::string& ip,
                int64_t latency, const std::string& fail,
                const std::string& log) {
  RowBatch batch(logblock::RequestLogSchema());
  batch.AddRow({Value::Int64(static_cast<int64_t>(tenant)), Value::Int64(ts),
                Value::String(ip), Value::Int64(latency), Value::String(fail),
                Value::String(log)});
  return batch;
}

LogStoreOptions SmallOptions() {
  LogStoreOptions options;
  options.engine.prefetch_threads = 2;
  options.engine.cache_options.memory_capacity_bytes = 8 << 20;
  options.engine.cache_options.ssd_dir.clear();
  return options;
}

TEST(LogStoreTest, AppendQueryRoundTrip) {
  auto db = LogStore::Open(SmallOptions());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE((*db)->Append(1, OneRow(1, 100, "1.1.1.1", 5, "false", "hello"))
                  .ok());

  query::LogQuery query;
  query.tenant_id = 1;
  auto result = (*db)->Query(query);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);  // visible pre-flush (real-time store)

  ASSERT_TRUE((*db)->Flush().ok());
  result = (*db)->Query(query);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);  // visible post-flush (LogBlock)
}

TEST(LogStoreTest, SchemaMismatchRejected) {
  auto db = LogStore::Open(SmallOptions());
  ASSERT_TRUE(db.ok());
  RowBatch wrong(logblock::Schema({{"x", logblock::ColumnType::kInt64, true}}));
  wrong.AddRow({Value::Int64(1)});
  EXPECT_TRUE((*db)->Append(1, wrong).IsInvalidArgument());
}

TEST(LogStoreTest, AutoflushArchivesInBackground) {
  LogStoreOptions options = SmallOptions();
  options.autoflush_rows = 100;
  auto db = LogStore::Open(options);
  ASSERT_TRUE(db.ok());
  workload::LogGenerator gen(1);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*db)->Append(1, gen.Generate(1, 30, i * 100, (i + 1) * 100))
                    .ok());
  }
  const auto stats = (*db)->GetStats();
  EXPECT_EQ(stats.rows_appended, 150u);
  EXPECT_GT(stats.rows_archived, 0u);
  EXPECT_GT(stats.logblocks, 0u);
  EXPECT_LT(stats.rows_in_rowstore, 150u);
}

TEST(LogStoreTest, MultiTenantIsolationAndBilling) {
  auto db = LogStore::Open(SmallOptions());
  ASSERT_TRUE(db.ok());
  workload::LogGenerator gen(2);
  ASSERT_TRUE((*db)->Append(1, gen.Generate(1, 1000, 0, 10'000)).ok());
  ASSERT_TRUE((*db)->Append(2, gen.Generate(2, 10, 0, 10'000)).ok());
  ASSERT_TRUE((*db)->Flush().ok());

  EXPECT_GT((*db)->TenantBytes(1), (*db)->TenantBytes(2));
  EXPECT_GT((*db)->TenantBytes(2), 0u);

  query::LogQuery query;
  query.tenant_id = 2;
  auto result = (*db)->Query(query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 10u);
}

TEST(LogStoreTest, ExpireFreesTenantStorage) {
  auto db = LogStore::Open(SmallOptions());
  ASSERT_TRUE(db.ok());
  workload::LogGenerator gen(3);
  ASSERT_TRUE((*db)->Append(1, gen.Generate(1, 100, 0, 1000)).ok());
  ASSERT_TRUE((*db)->Flush().ok());
  ASSERT_TRUE((*db)->Append(1, gen.Generate(1, 100, 5000, 6000)).ok());
  ASSERT_TRUE((*db)->Flush().ok());
  EXPECT_EQ((*db)->GetStats().logblocks, 2u);

  auto expired = (*db)->Expire(1, 2000);
  ASSERT_TRUE(expired.ok());
  EXPECT_EQ(*expired, 1);
  EXPECT_EQ((*db)->GetStats().logblocks, 1u);

  query::LogQuery query;
  query.tenant_id = 1;
  auto result = (*db)->Query(query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 100u);  // only the recent block remains
}

TEST(LogStoreTest, PaperTemplateEndToEnd) {
  auto db = LogStore::Open(SmallOptions());
  ASSERT_TRUE(db.ok());
  // Rows engineered to hit each predicate of the §5.1 sample query.
  ASSERT_TRUE((*db)->Append(
      12276, OneRow(12276, 500, "192.168.0.1", 150, "false", "match me")).ok());
  ASSERT_TRUE((*db)->Append(
      12276, OneRow(12276, 500, "192.168.0.1", 50, "false", "latency too low")).ok());
  ASSERT_TRUE((*db)->Append(
      12276, OneRow(12276, 500, "192.168.0.2", 150, "false", "wrong ip")).ok());
  ASSERT_TRUE((*db)->Append(
      12276, OneRow(12276, 5000, "192.168.0.1", 150, "false", "out of range")).ok());
  ASSERT_TRUE((*db)->Flush().ok());

  query::LogQuery query;
  query.tenant_id = 12276;
  query.ts_min = 0;
  query.ts_max = 1000;
  query.predicates = {
      query::Predicate::StringEq("ip", "192.168.0.1"),
      query::Predicate::Int64Compare("latency", query::CompareOp::kGe, 100),
      query::Predicate::StringEq("fail", "false"),
  };
  query.select_columns = {"log"};
  auto result = (*db)->Query(query);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0].s, "match me");
}

TEST(LogStoreTest, AnalyticsTopIpAggregation) {
  // §1's motivating BI query: "which IP addresses frequently accessed this
  // API in the past day?"
  auto db = LogStore::Open(SmallOptions());
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 30; ++i) {
    const std::string ip = i % 3 == 0 ? "9.9.9.9" : "1.1.1.1";
    ASSERT_TRUE(
        (*db)->Append(1, OneRow(1, i, ip, 1, "false", "GET /api")).ok());
  }
  ASSERT_TRUE((*db)->Flush().ok());

  query::LogQuery query;
  query.tenant_id = 1;
  query.select_columns = {"ip"};
  auto result = (*db)->Query(query);
  ASSERT_TRUE(result.ok());
  const auto top = query::GroupCountTopK(
      query::QueryEngine::Column(*result, "ip"), 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, "1.1.1.1");
  EXPECT_EQ(top[0].count, 20u);
  EXPECT_EQ(top[1].count, 10u);
}

TEST(LogStoreTest, FileBackedStorePersistsAndRecovers) {
  const auto dir = std::filesystem::temp_directory_path() / "logstore_core_db";
  std::filesystem::remove_all(dir);
  LogStoreOptions options = SmallOptions();
  options.storage_dir = dir.string();
  {
    auto db = LogStore::Open(options);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->Append(1, OneRow(1, 9, "a", 1, "false", "durable")).ok());
    ASSERT_TRUE((*db)->Flush().ok());
  }
  {
    // Reopen: the catalog checkpoint restores the tenant's LogBlocks and
    // queries see the archived data again.
    auto db = LogStore::Open(options);
    ASSERT_TRUE(db.ok());
    EXPECT_EQ((*db)->GetStats().logblocks, 1u);

    query::LogQuery query;
    query.tenant_id = 1;
    query.select_columns = {"log"};
    auto result = (*db)->Query(query);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->rows.size(), 1u);
    EXPECT_EQ(result->rows[0][0].s, "durable");

    // New flushes never collide with recovered object keys.
    ASSERT_TRUE((*db)->Append(1, OneRow(1, 99, "b", 2, "false", "next")).ok());
    ASSERT_TRUE((*db)->Flush().ok());
    EXPECT_EQ((*db)->GetStats().logblocks, 2u);
  }
  {
    auto db = LogStore::Open(options);
    ASSERT_TRUE(db.ok());
    query::LogQuery query;
    query.tenant_id = 1;
    auto result = (*db)->Query(query);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->rows.size(), 2u);
  }
  std::filesystem::remove_all(dir);
}

TEST(LogStoreTest, ExpirationSurvivesReopen) {
  const auto dir =
      std::filesystem::temp_directory_path() / "logstore_core_expire_db";
  std::filesystem::remove_all(dir);
  LogStoreOptions options = SmallOptions();
  options.storage_dir = dir.string();
  {
    auto db = LogStore::Open(options);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->Append(1, OneRow(1, 10, "a", 1, "false", "old")).ok());
    ASSERT_TRUE((*db)->Flush().ok());
    ASSERT_TRUE((*db)->Append(1, OneRow(1, 500, "a", 1, "false", "new")).ok());
    ASSERT_TRUE((*db)->Flush().ok());
    ASSERT_TRUE((*db)->Expire(1, 100).ok());
  }
  auto db = LogStore::Open(options);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->GetStats().logblocks, 1u);
  query::LogQuery query;
  query.tenant_id = 1;
  query.select_columns = {"log"};
  auto result = (*db)->Query(query);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0].s, "new");
  std::filesystem::remove_all(dir);
}

TEST(LogStoreTest, RetentionPoliciesApplyPerTenant) {
  auto db = LogStore::Open(SmallOptions());
  ASSERT_TRUE(db.ok());
  // Tenant 1: keep 1000us. Tenant 2: keep everything (no policy).
  (*db)->SetRetention(1, 1000);

  for (uint64_t tenant : {1ull, 2ull}) {
    ASSERT_TRUE(
        (*db)->Append(tenant, OneRow(tenant, 100, "a", 1, "false", "old")).ok());
    ASSERT_TRUE((*db)->Flush().ok());
    ASSERT_TRUE(
        (*db)->Append(tenant, OneRow(tenant, 5000, "a", 1, "false", "new")).ok());
    ASSERT_TRUE((*db)->Flush().ok());
  }

  auto removed = (*db)->ApplyRetentionPolicies(/*now=*/5500);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 1);  // only tenant 1's old block
  EXPECT_EQ((*db)->metadata()->TenantBlockCount(1), 1u);
  EXPECT_EQ((*db)->metadata()->TenantBlockCount(2), 2u);

  // Clearing the policy stops further expiration.
  (*db)->SetRetention(1, 0);
  removed = (*db)->ApplyRetentionPolicies(/*now=*/100'000);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 0);
  EXPECT_EQ((*db)->metadata()->TenantBlockCount(1), 1u);
}

TEST(LogStoreTest, SimulatedLatencyIsCharged) {
  LogStoreOptions options = SmallOptions();
  options.simulate_object_latency = true;
  options.simulated.first_byte_latency_us = 100;
  options.simulated.time_scale = 0.0;  // account without sleeping
  auto db = LogStore::Open(options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->Append(1, OneRow(1, 1, "a", 1, "false", "x")).ok());
  ASSERT_TRUE((*db)->Flush().ok());
  auto* sim = static_cast<objectstore::SimulatedObjectStore*>(
      (*db)->object_store());
  EXPECT_GT(sim->charged_micros(), 0u);
}

TEST(LogStoreTest, GeneratedQuerySetExecutes) {
  auto db = LogStore::Open(SmallOptions());
  ASSERT_TRUE(db.ok());
  workload::LogGenerator gen(6);
  ASSERT_TRUE((*db)->Append(4, gen.Generate(4, 2000, 0, 1'000'000)).ok());
  ASSERT_TRUE((*db)->Flush().ok());

  workload::QueryGenerator qgen(2);
  for (const auto& q : qgen.TenantQuerySet(4, 0, 1'000'000)) {
    auto result = (*db)->Query(q);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }
}

}  // namespace
}  // namespace logstore
