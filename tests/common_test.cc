#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/blocking_queue.h"
#include "common/clock.h"
#include "common/coding.h"
#include "common/crc32c.h"
#include "common/hash.h"
#include "common/random.h"
#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/threadpool.h"

namespace logstore {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing block");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: missing block");
}

TEST(StatusTest, AllFactoriesProduceMatchingPredicates) {
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::TimedOut("x").IsTimedOut());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::IOError("disk gone");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(SliceTest, Basics) {
  Slice s("hello");
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s[1], 'e');
  EXPECT_TRUE(s.starts_with("hel"));
  EXPECT_FALSE(s.starts_with("help"));
  s.remove_prefix(2);
  EXPECT_EQ(s.ToString(), "llo");
}

TEST(SliceTest, Compare) {
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abcd").compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
  EXPECT_TRUE(Slice("a") == Slice("a"));
  EXPECT_TRUE(Slice("a") != Slice("b"));
}

TEST(CodingTest, FixedRoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xdeadbeefu);
  PutFixed64(&buf, 0x0123456789abcdefull);
  Slice in(buf);
  uint32_t v32;
  uint64_t v64;
  ASSERT_TRUE(GetFixed32(&in, &v32));
  ASSERT_TRUE(GetFixed64(&in, &v64));
  EXPECT_EQ(v32, 0xdeadbeefu);
  EXPECT_EQ(v64, 0x0123456789abcdefull);
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, VarintRoundTripBoundaries) {
  const uint64_t values[] = {0,    1,          127,        128,
                             255,  16383,      16384,      (1ull << 32) - 1,
                             1ull << 32, UINT64_MAX};
  std::string buf;
  for (uint64_t v : values) PutVarint64(&buf, v);
  Slice in(buf);
  for (uint64_t v : values) {
    uint64_t got;
    ASSERT_TRUE(GetVarint64(&in, &got));
    EXPECT_EQ(got, v);
  }
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, Varint32RejectsOverflow) {
  std::string buf;
  PutVarint64(&buf, static_cast<uint64_t>(UINT32_MAX) + 1);
  Slice in(buf);
  uint32_t v;
  EXPECT_FALSE(GetVarint32(&in, &v));
}

TEST(CodingTest, VarintTruncatedFails) {
  std::string buf;
  PutVarint64(&buf, 1ull << 40);
  Slice in(buf.data(), buf.size() - 1);
  uint64_t v;
  EXPECT_FALSE(GetVarint64(&in, &v));
}

TEST(CodingTest, ZigZagRoundTrip) {
  const int64_t values[] = {0, -1, 1, -2, 2, INT64_MIN, INT64_MAX, -123456789};
  for (int64_t v : values) {
    EXPECT_EQ(ZigZagDecode64(ZigZagEncode64(v)), v) << v;
  }
  // Small magnitudes encode small.
  EXPECT_EQ(ZigZagEncode64(0), 0u);
  EXPECT_EQ(ZigZagEncode64(-1), 1u);
  EXPECT_EQ(ZigZagEncode64(1), 2u);
}

TEST(CodingTest, LengthPrefixedSlice) {
  std::string buf;
  PutLengthPrefixedSlice(&buf, "alpha");
  PutLengthPrefixedSlice(&buf, "");
  PutLengthPrefixedSlice(&buf, "beta");
  Slice in(buf);
  Slice a, b, c;
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &a));
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &b));
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &c));
  EXPECT_EQ(a.ToString(), "alpha");
  EXPECT_EQ(b.ToString(), "");
  EXPECT_EQ(c.ToString(), "beta");
}

TEST(CodingTest, VarintLengthMatchesEncoding) {
  const uint64_t values[] = {0, 127, 128, 1ull << 35, UINT64_MAX};
  for (uint64_t v : values) {
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_EQ(VarintLength(v), static_cast<int>(buf.size()));
  }
}

TEST(Crc32cTest, KnownVectors) {
  // Standard check value: CRC-32C("123456789") = 0xe3069283.
  EXPECT_EQ(crc32c::Value("123456789", 9), 0xe3069283u);
  // CRC of 32 zero bytes = 0x8a9136aa (iSCSI test vector).
  char zeros[32] = {0};
  EXPECT_EQ(crc32c::Value(zeros, sizeof(zeros)), 0x8a9136aau);
}

TEST(Crc32cTest, ExtendComposes) {
  const std::string data = "hello world, this is logstore";
  const uint32_t whole = crc32c::Value(data.data(), data.size());
  uint32_t partial = crc32c::Value(data.data(), 10);
  partial = crc32c::Extend(partial, data.data() + 10, data.size() - 10);
  EXPECT_EQ(whole, partial);
}

TEST(Crc32cTest, MaskRoundTrip) {
  const uint32_t crc = crc32c::Value("abc", 3);
  EXPECT_NE(crc32c::Mask(crc), crc);
  EXPECT_EQ(crc32c::Unmask(crc32c::Mask(crc)), crc);
}

TEST(HashTest, DeterministicAndSeeded) {
  EXPECT_EQ(Hash64("tenant-42"), Hash64("tenant-42"));
  EXPECT_NE(Hash64("tenant-42"), Hash64("tenant-43"));
  EXPECT_NE(Hash64("tenant-42", 1), Hash64("tenant-42", 2));
}

TEST(HashTest, SpreadsLowBits) {
  // Sequential keys should not collide in the low bits used for sharding.
  std::vector<int> bucket_counts(16, 0);
  for (int i = 0; i < 1600; ++i) {
    bucket_counts[Hash64("key" + std::to_string(i)) % 16]++;
  }
  for (int count : bucket_counts) {
    EXPECT_GT(count, 50);  // perfectly uniform would be 100
    EXPECT_LT(count, 150);
  }
}

TEST(RandomTest, DeterministicForSeed) {
  Random a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RandomTest, UniformInRange) {
  Random rng(1234);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    const int64_t r = rng.UniformRange(-5, 5);
    EXPECT_GE(r, -5);
    EXPECT_LE(r, 5);
  }
}

TEST(ManualClockTest, AdvanceAndSleep) {
  ManualClock clock(100);
  EXPECT_EQ(clock.NowMicros(), 100);
  clock.Advance(50);
  EXPECT_EQ(clock.NowMicros(), 150);
  clock.SleepMicros(25);  // advances instead of blocking
  EXPECT_EQ(clock.NowMicros(), 175);
  clock.Set(0);
  EXPECT_EQ(clock.NowMicros(), 0);
}

TEST(BlockingQueueTest, FifoOrder) {
  BlockingQueue<int> q(10, 0);
  ASSERT_TRUE(q.TryPush(1));
  ASSERT_TRUE(q.TryPush(2));
  ASSERT_TRUE(q.TryPush(3));
  EXPECT_EQ(*q.Pop(), 1);
  EXPECT_EQ(*q.Pop(), 2);
  EXPECT_EQ(*q.Pop(), 3);
}

TEST(BlockingQueueTest, ItemLimitRejects) {
  BlockingQueue<int> q(2, 0);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));  // backpressure
  q.Pop();
  EXPECT_TRUE(q.TryPush(3));
}

TEST(BlockingQueueTest, ByteLimitRejects) {
  BlockingQueue<int> q(0, 100);
  EXPECT_TRUE(q.TryPush(1, 60));
  EXPECT_FALSE(q.TryPush(2, 60));  // 120 > 100
  EXPECT_TRUE(q.TryPush(3, 40));   // exactly at limit
  EXPECT_EQ(q.bytes(), 100u);
}

TEST(BlockingQueueTest, OversizedItemAdmittedWhenEmpty) {
  BlockingQueue<int> q(0, 10);
  // A single item larger than the byte budget must still be admitted,
  // otherwise it could never be processed.
  EXPECT_TRUE(q.TryPush(1, 1000));
  EXPECT_FALSE(q.TryPush(2, 1));
}

TEST(BlockingQueueTest, CloseDrainsThenStops) {
  BlockingQueue<int> q(10, 0);
  q.TryPush(1);
  q.Close();
  EXPECT_FALSE(q.TryPush(2));
  EXPECT_EQ(*q.Pop(), 1);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BlockingQueueTest, BlockingPushWakesOnPop) {
  BlockingQueue<int> q(1, 0);
  ASSERT_TRUE(q.TryPush(1));
  std::thread producer([&] { EXPECT_TRUE(q.Push(2)); });
  // Give the producer a moment to block, then free a slot.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(*q.Pop(), 1);
  producer.join();
  EXPECT_EQ(*q.Pop(), 2);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) pool.Schedule([&] { counter++; });
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, SubmitReturnsFutureValue) {
  ThreadPool pool(2);
  auto f = pool.Submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, ParallelismIsReal) {
  ThreadPool pool(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 8; ++i) {
    pool.Schedule([&] {
      const int now = ++concurrent;
      int old = peak.load();
      while (now > old && !peak.compare_exchange_weak(old, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      --concurrent;
    });
  }
  pool.Wait();
  EXPECT_GE(peak.load(), 2);
}

}  // namespace
}  // namespace logstore
