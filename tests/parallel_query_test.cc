// Parallel query execution property tests: the parallel scheduler must be
// invisible — byte-identical rows (content AND order) to the serial path
// across a seeded query matrix, including limit queries, fault injection,
// cancellation after a real error, and many queries sharing one engine.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/data_builder.h"
#include "objectstore/fault_injecting_object_store.h"
#include "objectstore/memory_object_store.h"
#include "query/engine.h"
#include "rowstore/row_store.h"
#include "workload/loggen.h"
#include "workload/querygen.h"

namespace logstore::query {
namespace {

class ParallelQueryTest : public ::testing::TestWithParam<int> {
 protected:
  static constexpr int64_t kHistory = 8ll * 3600 * 1'000'000;

  void SetUp() override {
    store_ = std::make_unique<objectstore::MemoryObjectStore>();
    // Small LogBlocks so each tenant spans many of them: the parallel
    // scheduler has real fan-out and limit queries break mid-list.
    cluster::DataBuilderOptions builder_options;
    builder_options.max_rows_per_logblock = 500;
    builder_options.block_options.rows_per_block = 128;
    cluster::DataBuilder builder(store_.get(), &map_, builder_options);
    rowstore::RowStore rows(logblock::RequestLogSchema());
    workload::LogGenerator gen(41);
    for (uint64_t tenant = 0; tenant < 3; ++tenant) {
      rows.Append(tenant, gen.Generate(tenant, 4000, 0, kHistory));
    }
    ASSERT_TRUE(builder.BuildOnce(&rows).ok());
  }

  EngineOptions Options(int threads) const {
    EngineOptions options;
    options.query_threads = threads;
    options.prefetch_threads = 4;
    options.io_block_size = 4096;
    options.cache_options.memory_capacity_bytes = 8 << 20;
    options.cache_options.ssd_dir.clear();
    return options;
  }

  Result<QueryResult> Run(objectstore::ObjectStore* store,
                          const EngineOptions& options, const LogQuery& query) {
    auto engine = QueryEngine::Open(store, options);
    if (!engine.ok()) return engine.status();
    return (*engine)->Execute(query, map_);
  }

  // Asserts full byte-identity: columns, row contents, row ORDER, and the
  // execution stats the merge is supposed to reproduce.
  void ExpectIdentical(const QueryResult& serial, const QueryResult& parallel,
                       const std::string& label) {
    EXPECT_EQ(parallel.columns, serial.columns) << label;
    ASSERT_EQ(parallel.rows.size(), serial.rows.size()) << label;
    for (size_t r = 0; r < serial.rows.size(); ++r) {
      EXPECT_EQ(parallel.rows[r], serial.rows[r]) << label << " row " << r;
    }
    EXPECT_EQ(parallel.stats.logblocks_sma_skipped,
              serial.stats.logblocks_sma_skipped)
        << label;
    EXPECT_EQ(parallel.stats.exec.column_blocks_scanned,
              serial.stats.exec.column_blocks_scanned)
        << label;
    EXPECT_EQ(parallel.stats.exec.column_blocks_skipped,
              serial.stats.exec.column_blocks_skipped)
        << label;
    EXPECT_EQ(parallel.stats.exec.index_probes, serial.stats.exec.index_probes)
        << label;
    EXPECT_EQ(parallel.stats.exec.rows_matched, serial.stats.exec.rows_matched)
        << label;
  }

  std::unique_ptr<objectstore::MemoryObjectStore> store_;
  logblock::LogBlockMap map_;
};

TEST_P(ParallelQueryTest, MatchesSerialByteForByte) {
  workload::QueryGenerator qgen(static_cast<uint64_t>(GetParam()));
  const uint64_t tenant = static_cast<uint64_t>(GetParam()) % 3;
  for (const auto& base_query : qgen.TenantQuerySet(tenant, 0, kHistory)) {
    for (uint32_t limit : {0u, 1u, 7u, 100u}) {
      LogQuery query = base_query;
      query.limit = limit;
      auto serial = Run(store_.get(), Options(1), query);
      ASSERT_TRUE(serial.ok()) << serial.status().ToString();
      for (int threads : {4, 8}) {
        auto parallel = Run(store_.get(), Options(threads), query);
        ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
        ExpectIdentical(*serial, *parallel,
                        "limit=" + std::to_string(limit) +
                            " threads=" + std::to_string(threads));
      }
    }
  }
}

TEST_P(ParallelQueryTest, MatchesSerialUnderTransientFaults) {
  // Transient object-store faults mid-scan are absorbed by the retry layer
  // below the parallel scheduler; results stay identical to a clean serial
  // run, in content and order.
  objectstore::FaultInjectionOptions faults;
  faults.error_rate = 0.05;
  faults.short_read_rate = 0.02;
  faults.seed = 1000 + static_cast<uint64_t>(GetParam());
  objectstore::FaultInjectingObjectStore flaky(store_.get(), faults);

  EngineOptions options = Options(8);
  options.retry_options.max_attempts = 8;
  options.retry_options.initial_backoff_us = 100;
  options.retry_options.max_backoff_us = 1000;

  workload::QueryGenerator qgen(static_cast<uint64_t>(GetParam()));
  const uint64_t tenant = static_cast<uint64_t>(GetParam()) % 3;
  for (const auto& base_query : qgen.TenantQuerySet(tenant, 0, kHistory)) {
    for (uint32_t limit : {0u, 7u}) {
      LogQuery query = base_query;
      query.limit = limit;
      auto serial = Run(store_.get(), Options(1), query);
      ASSERT_TRUE(serial.ok()) << serial.status().ToString();
      auto parallel = Run(&flaky, options, query);
      ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
      ExpectIdentical(*serial, *parallel, "faulty limit=" + std::to_string(limit));
    }
  }
  EXPECT_GT(flaky.fault_stats().injected_errors.load(), 0u);
}

TEST_F(ParallelQueryTest, CancellationUnderErrorDoesNotHangOrPoison) {
  // One LogBlock's object is unreachable: the parallel run must return that
  // error (not Aborted, not a hang), cancel the remaining work, and leave
  // the engine fully usable afterwards.
  objectstore::FaultInjectingObjectStore flaky(store_.get(), {});
  const auto blocks = map_.TenantBlocks(1);
  ASSERT_GT(blocks.size(), 2u);
  flaky.BlacklistKey(blocks[blocks.size() / 2].object_key);

  EngineOptions options = Options(8);
  options.use_retry = false;  // fail fast; retry policy is tested elsewhere
  auto engine = QueryEngine::Open(&flaky, options);
  ASSERT_TRUE(engine.ok());

  LogQuery query;
  query.tenant_id = 1;
  query.ts_min = 0;
  query.ts_max = kHistory;
  auto failed = (*engine)->Execute(query, map_);
  ASSERT_FALSE(failed.ok());
  EXPECT_FALSE(failed.status().IsAborted()) << failed.status().ToString();

  // Same engine, fault cleared: identical to a clean serial run.
  flaky.ClearBlacklist();
  auto recovered = (*engine)->Execute(query, map_);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  auto serial = Run(store_.get(), Options(1), query);
  ASSERT_TRUE(serial.ok());
  ExpectIdentical(*serial, *recovered, "recovered");
}

TEST_F(ParallelQueryTest, ConcurrentQueriesShareOneEngine) {
  // Many queries race on one engine: one query pool, one block manager
  // (memory + SSD), one prefetch service. Every result must still match
  // its serial baseline.
  const auto dir = std::filesystem::temp_directory_path() /
                   "logstore_parallel_query_ssd_test";
  std::filesystem::remove_all(dir);

  EngineOptions options = Options(8);
  options.cache_options.memory_capacity_bytes = 256 << 10;  // force SSD spill
  options.cache_options.memory_shards = 2;
  options.cache_options.ssd_dir = dir.string();
  options.cache_options.ssd_capacity_bytes = 64 << 20;
  auto engine = QueryEngine::Open(store_.get(), options);
  ASSERT_TRUE(engine.ok());

  struct Job {
    LogQuery query;
    QueryResult baseline;
  };
  std::vector<Job> jobs;
  for (int seed = 1; seed <= 3; ++seed) {
    workload::QueryGenerator qgen(static_cast<uint64_t>(seed));
    const uint64_t tenant = static_cast<uint64_t>(seed) % 3;
    for (const auto& query : qgen.TenantQuerySet(tenant, 0, kHistory)) {
      auto serial = Run(store_.get(), Options(1), query);
      ASSERT_TRUE(serial.ok()) << serial.status().ToString();
      jobs.push_back({query, std::move(serial).value()});
    }
  }

  std::vector<std::thread> threads;
  std::vector<int> failures(8, 0);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (size_t j = static_cast<size_t>(t); j < jobs.size(); j += 8) {
        for (int round = 0; round < 2; ++round) {  // cold then cached
          auto result = (*engine)->Execute(jobs[j].query, map_);
          if (!result.ok() || result->rows != jobs[j].baseline.rows ||
              result->columns != jobs[j].baseline.columns) {
            ++failures[t];
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < 8; ++t) EXPECT_EQ(failures[t], 0) << "thread " << t;

  engine->reset();  // release SSD files before removing the directory
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelQueryTest, ::testing::Range(1, 5));

}  // namespace
}  // namespace logstore::query
