// Admission governor tests: the cluster-wide execution-slot budget must be
// a hard cap, hand released slots to waiters round-robin across tenants
// (so a narrow tenant is served right after the in-flight scan, not behind
// a wide tenant's backlog), bound the narrow tenant's slot-wait while a
// wide tenant saturates the pool, and never leak a slot when a waiter is
// cancelled mid-queue.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/fair_queue.h"
#include "query/admission.h"

namespace logstore::query {
namespace {

void SpinUntil(const std::function<bool()>& predicate) {
  while (!predicate()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

TEST(FairQueueTest, RoundRobinAcrossOwnersFifoWithinOwner) {
  FairQueue<int> queue;
  queue.Push(1, 10);
  queue.Push(1, 11);
  queue.Push(1, 12);
  queue.Push(2, 20);
  queue.Push(3, 30);
  std::vector<int> popped;
  int item = 0;
  while (queue.PopNext(&item)) popped.push_back(item);
  // Owners served 1,2,3,1,1 (wrap), FIFO within owner 1.
  EXPECT_EQ(popped, (std::vector<int>{10, 20, 30, 11, 12}));
  EXPECT_TRUE(queue.empty());
}

TEST(FairQueueTest, RemoveWithdrawsOneQueuedItem) {
  FairQueue<int> queue;
  queue.Push(7, 1);
  queue.Push(7, 2);
  EXPECT_TRUE(queue.Remove(7, 1));
  EXPECT_FALSE(queue.Remove(7, 99));
  EXPECT_EQ(queue.size(), 1u);
  int item = 0;
  ASSERT_TRUE(queue.PopNext(&item));
  EXPECT_EQ(item, 2);
}

TEST(AdmissionGovernorTest, BudgetIsAHardCap) {
  AdmissionGovernor governor(2);
  EXPECT_EQ(governor.total_slots(), 2);
  ASSERT_TRUE(governor.Acquire(1));
  ASSERT_TRUE(governor.Acquire(1));
  EXPECT_EQ(governor.slots_in_use(), 2);

  // A third acquire must block until a slot is released.
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    ASSERT_TRUE(governor.Acquire(2));
    acquired.store(true);
    governor.Release();
  });
  SpinUntil([&] { return governor.queue_depth() == 1; });
  EXPECT_FALSE(acquired.load());
  governor.Release();
  waiter.join();
  EXPECT_TRUE(acquired.load());
  governor.Release();
  EXPECT_EQ(governor.slots_in_use(), 0);
}

TEST(AdmissionGovernorTest, NarrowTenantIsServedBeforeWideBacklog) {
  // The gated idiom of the prefetch fairness test, applied to execution
  // slots: tenant 1's first scan holds the only slot (the "gate"), tenant 1
  // floods the queue behind it, then tenant 2 enqueues one request. The
  // grant order after the gate opens must serve tenant 2 right after the
  // head of tenant 1's backlog — round-robin — not behind all of it.
  AdmissionGovernor governor(1);
  ASSERT_TRUE(governor.Acquire(1));  // the gate: wide tenant's in-flight scan

  std::mutex order_mu;
  std::vector<uint64_t> grant_order;
  auto record = [&](uint64_t tenant) {
    std::lock_guard<std::mutex> lock(order_mu);
    grant_order.push_back(tenant);
  };

  constexpr int kWideBacklog = 8;
  std::vector<std::thread> wide;
  for (int i = 0; i < kWideBacklog; ++i) {
    wide.emplace_back([&] {
      ASSERT_TRUE(governor.Acquire(1));
      record(1);
      governor.Release();
    });
    // Enqueue the backlog one by one so tenant 1's FIFO order is settled
    // before tenant 2 arrives.
    SpinUntil([&] { return governor.queue_depth() == static_cast<size_t>(i + 1); });
  }

  std::thread narrow([&] {
    ASSERT_TRUE(governor.Acquire(2));
    record(2);
    governor.Release();
  });
  SpinUntil([&] { return governor.queue_depth() == kWideBacklog + 1; });

  governor.Release();  // the gated scan finishes; the drain begins
  for (auto& thread : wide) thread.join();
  narrow.join();

  ASSERT_EQ(grant_order.size(), static_cast<size_t>(kWideBacklog + 1));
  // Round-robin serves one wide waiter, then the narrow tenant, then the
  // rest of the wide backlog. With one slot the drain is strictly serial,
  // so the order is deterministic.
  EXPECT_EQ(grant_order[0], 1u);
  EXPECT_EQ(grant_order[1], 2u);
  for (size_t i = 2; i < grant_order.size(); ++i) {
    EXPECT_EQ(grant_order[i], 1u) << "position " << i;
  }
}

TEST(AdmissionGovernorTest, NarrowTenantWaitStaysBoundedUnderWideLoad) {
  // Wall-clock fairness: a wide tenant keeps every slot busy with a deep
  // backlog while a narrow tenant issues sequential single acquisitions.
  // Round-robin grants bound the narrow tenant's worst slot-wait to about
  // one scan, not the wide tenant's whole backlog.
  AdmissionGovernor governor(2);
  constexpr auto kHold = std::chrono::milliseconds(2);
  constexpr int kWidePerThread = 25;

  std::atomic<bool> go{false};
  std::vector<std::thread> wide;
  for (int t = 0; t < 4; ++t) {
    wide.emplace_back([&] {
      SpinUntil([&] { return go.load(); });
      for (int i = 0; i < kWidePerThread; ++i) {
        ASSERT_TRUE(governor.Acquire(1));
        std::this_thread::sleep_for(kHold);
        governor.Release();
      }
    });
  }
  const int64_t wide_start_us = SystemClock::Default()->NowMicros();
  go.store(true);

  constexpr int kNarrowQueries = 10;
  for (int i = 0; i < kNarrowQueries; ++i) {
    ASSERT_TRUE(governor.Acquire(2));
    std::this_thread::sleep_for(kHold);
    governor.Release();
  }
  const AdmissionTenantStats narrow = governor.TenantStats(2);
  for (auto& thread : wide) thread.join();
  const int64_t wide_elapsed_us =
      SystemClock::Default()->NowMicros() - wide_start_us;

  EXPECT_EQ(narrow.grants, static_cast<uint64_t>(kNarrowQueries));
  // Starvation would make a narrow wait approach the full drain time of the
  // wide backlog; fairness keeps each wait near one hold interval. Assert
  // a generous margin (a quarter of the wide run) to stay robust on loaded
  // CI machines.
  EXPECT_LT(narrow.max_wait_us, wide_elapsed_us / 4)
      << "narrow max wait " << narrow.max_wait_us << "us vs wide elapsed "
      << wide_elapsed_us << "us";
}

TEST(AdmissionGovernorTest, CancelledWaiterNeitherBlocksNorLeaks) {
  AdmissionGovernor governor(1);
  ASSERT_TRUE(governor.Acquire(1));

  std::atomic<bool> cancel{false};
  std::atomic<bool> refused{false};
  std::thread waiter([&] {
    // Cancelled while queued: Acquire returns false without a slot.
    refused.store(!governor.Acquire(2, &cancel));
  });
  SpinUntil([&] { return governor.queue_depth() == 1; });
  cancel.store(true);
  waiter.join();
  EXPECT_TRUE(refused.load());
  EXPECT_EQ(governor.queue_depth(), 0u);

  // The held slot is still accounted, and releasing it leaves a clean
  // governor: the next acquire takes the fast path.
  EXPECT_EQ(governor.slots_in_use(), 1);
  governor.Release();
  EXPECT_EQ(governor.slots_in_use(), 0);
  ASSERT_TRUE(governor.Acquire(3));
  governor.Release();
}

TEST(AdmissionGovernorTest, StatsCountQueuedGrantsAndWaits) {
  AdmissionGovernor governor(1);
  ASSERT_TRUE(governor.Acquire(5));
  std::thread waiter([&] {
    ASSERT_TRUE(governor.Acquire(5));
    governor.Release();
  });
  SpinUntil([&] { return governor.queue_depth() == 1; });
  governor.Release();
  waiter.join();

  const AdmissionTenantStats stats = governor.TenantStats(5);
  EXPECT_EQ(stats.grants, 2u);
  EXPECT_EQ(stats.queued_grants, 1u);
  EXPECT_GE(stats.max_wait_us, 0);
  EXPECT_GE(stats.total_wait_us, stats.max_wait_us);
}

// Regression for the cancellation-latency bug: Acquire used to poll its
// cancel flag on a 1ms wait_for loop — cheap but busy, and any future
// backstop widening would have silently added cancellation latency. Flips
// routed through SignalCancel must wake the waiter directly: the observed
// latency has to come in far under the coarse backstop (200ms), proving
// the wakeup is the notification, not the timeout.
TEST(AdmissionGovernorTest, SignalCancelWakesWaiterWithoutPolling) {
  AdmissionGovernor governor(1);
  ASSERT_TRUE(governor.Acquire(1));
  std::atomic<bool> cancel{false};
  std::atomic<int64_t> woke_us{0};
  std::thread waiter([&] {
    EXPECT_FALSE(governor.Acquire(2, &cancel));
    woke_us.store(SystemClock::Default()->NowMicros());
  });
  SpinUntil([&] { return governor.queue_depth() == 1; });
  const int64_t flip_us = SystemClock::Default()->NowMicros();
  SignalCancel(&cancel);
  waiter.join();
  EXPECT_LT(woke_us.load() - flip_us, 100'000)
      << "cancellation took as long as the backstop; the direct wakeup "
         "path is not firing";
  EXPECT_EQ(governor.queue_depth(), 0u);
  governor.Release();
  EXPECT_EQ(governor.slots_in_use(), 0);
}

// A flip that bypasses SignalCancel (legacy callers storing the flag
// directly) must still cancel via the backstop — slower, never stuck.
TEST(AdmissionGovernorTest, RawFlagFlipStillCancelsViaBackstop) {
  AdmissionGovernor governor(1);
  ASSERT_TRUE(governor.Acquire(1));
  std::atomic<bool> cancel{false};
  std::thread waiter([&] { EXPECT_FALSE(governor.Acquire(2, &cancel)); });
  SpinUntil([&] { return governor.queue_depth() == 1; });
  cancel.store(true);  // no SignalCancel: only the backstop can see this
  waiter.join();
  governor.Release();
  EXPECT_EQ(governor.slots_in_use(), 0);
}

// Legacy TenantStats and the registry cells are dual-written at the same
// accounting points and must agree exactly.
TEST(AdmissionGovernorTest, RegistryCellsMirrorTenantStats) {
  metrics::MetricRegistry registry;
  AdmissionGovernor governor(1, &registry);
  ASSERT_TRUE(governor.Acquire(5));
  std::thread waiter([&] {
    ASSERT_TRUE(governor.Acquire(5));
    governor.Release();
  });
  SpinUntil([&] { return governor.queue_depth() == 1; });
  governor.Release();
  waiter.join();

  const AdmissionTenantStats stats = governor.TenantStats(5);
  const auto snap = registry.SnapshotMap();
  EXPECT_EQ(snap.at("admission.grants{tenant=5}"),
            static_cast<int64_t>(stats.grants));
  EXPECT_EQ(snap.at("admission.queued_grants{tenant=5}"),
            static_cast<int64_t>(stats.queued_grants));
  EXPECT_EQ(snap.at("admission.wait_us{tenant=5}"), stats.total_wait_us);
}

}  // namespace
}  // namespace logstore::query
