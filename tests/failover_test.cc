// Seeded fault-injection suite for controller-driven worker failover.
//
// The deployment promise under test (§3 availability story): because
// LogBlocks live in shared object storage and the row store is Raft-
// replicated into per-worker durable WALs, a worker is disposable. Killing
// any single worker mid-workload must lose zero acknowledged rows: the
// control cycle detects the death through the exported health signals,
// reassigns the dead worker's shards to survivors (tenant routes follow
// their shards), recovers the un-archived WAL tail by re-ingesting it
// through the broker write path, and the dead worker can later rejoin as a
// fresh empty instance via Cluster::RestartWorker.
//
// Every scenario drives a model oracle — the per-tenant multiset of marker
// strings whose Write() was acknowledged — and asserts Cluster::Query
// returns exactly those markers (set-equality where duplicates are
// impossible; coverage-without-fabrication where the at-least-once
// archiving window legally duplicates, or where an un-acked write's
// indeterminate fate may legally resurrect it).
//
// Seeds default to a quick smoke count; CI raises FAILOVER_SEEDS.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/controller.h"
#include "common/metrics.h"
#include "common/random.h"
#include "consensus/durable_log.h"
#include "objectstore/memory_object_store.h"
#include "test_env.h"

namespace logstore::cluster {
namespace {

namespace fs = std::filesystem;

using consensus::CrashMode;
using consensus::SyncPolicy;
using logblock::RowBatch;
using logblock::Value;
using testenv::MarkerRow;
using testenv::Oracle;

int SeedCount() {
  return testenv::SeedCount("FAILOVER_SEEDS", 4);  // local smoke; CI raises
}

std::multiset<std::string> QueryMarkers(Cluster& cluster, uint64_t tenant) {
  query::LogQuery query;
  query.tenant_id = tenant;
  query.select_columns = {"log"};
  auto result = cluster.Query(query);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  std::multiset<std::string> markers;
  if (result.ok()) {
    for (const auto& row : result->rows) markers.insert(row[0].s);
  }
  return markers;
}

// Exact check: queries return the oracle's rows, nothing lost, nothing
// duplicated, nothing fabricated.
void ExpectOracleExact(Cluster& cluster, const Oracle& oracle,
                       const std::string& context) {
  for (const auto& [tenant, expected] : oracle) {
    const auto visible = QueryMarkers(cluster, tenant);
    EXPECT_EQ(visible, expected) << context << ": tenant " << tenant;
  }
}

// Relaxed check: every acked marker is visible, and everything visible is
// either acked (duplicates allowed — the at-least-once archiving window)
// or explicitly listed in `maybe` (un-acked writes whose fate is
// indeterminate). Nothing else may be fabricated.
void ExpectOracleCovered(Cluster& cluster, const Oracle& oracle,
                         const std::string& context,
                         const Oracle& maybe = {}) {
  for (const auto& [tenant, expected] : oracle) {
    const auto visible = QueryMarkers(cluster, tenant);
    for (const auto& marker : expected) {
      EXPECT_TRUE(visible.count(marker) > 0)
          << context << ": tenant " << tenant << " lost acked " << marker;
    }
    auto maybe_it = maybe.find(tenant);
    for (const auto& marker : visible) {
      const bool allowed =
          expected.count(marker) > 0 ||
          (maybe_it != maybe.end() && maybe_it->second.count(marker) > 0);
      EXPECT_TRUE(allowed) << context << ": tenant " << tenant
                           << " fabricated " << marker;
    }
  }
}

// Placement/route invariants that must hold at every quiescent point:
// every shard is owned by a live worker, and every route targets a live
// worker's shard with the tenant's weights summing to 100%.
void CheckPlacementInvariants(Controller& controller,
                              const std::string& context) {
  for (uint32_t s = 0; s < controller.num_shards(); ++s) {
    EXPECT_TRUE(controller.WorkerAlive(controller.WorkerForShard(s)))
        << context << ": shard " << s << " owned by dead worker "
        << controller.WorkerForShard(s);
  }
  const flow::RouteTable routes = controller.routes();
  std::string error;
  EXPECT_TRUE(routes.Validate(1e-6, &error)) << context << ": " << error;
  for (const auto& [tenant, weights] : routes.rules()) {
    for (const auto& [shard, weight] : weights) {
      (void)weight;
      EXPECT_TRUE(controller.WorkerAlive(controller.WorkerForShard(shard)))
          << context << ": tenant " << tenant << " routes to shard " << shard
          << " on dead worker";
    }
  }
}

// Mangles every replica WAL of a worker the way its process crash could
// have, then destroys the worker object (the process death).
void CrashAndKill(Cluster& cluster, uint32_t victim, CrashMode mode,
                  Random* rng) {
  Worker* worker = cluster.worker(victim);
  ASSERT_NE(worker, nullptr);
  for (int node = 0; node < 3; ++node) {
    ASSERT_TRUE(worker->wal(node)->SimulateCrash(mode, rng->Next()).ok());
  }
  ASSERT_TRUE(cluster.KillWorker(victim).ok());
}

class FailoverTest : public ::testing::Test {
 protected:
  void TearDown() override {
    cluster_.reset();
    store_.reset();
    if (!dir_.empty()) fs::remove_all(dir_);
  }

  // A durable replicated deployment over per-worker WAL directories.
  // `registry` isolates the deployment's metrics for equality assertions;
  // nullptr keeps the process-wide default.
  void OpenCluster(const std::string& name, uint32_t num_workers,
                   uint32_t shards_per_worker, uint64_t seed,
                   metrics::MetricRegistry* registry = nullptr) {
    dir_ = fs::temp_directory_path() / ("failover_" + name);
    fs::remove_all(dir_);
    store_ = std::make_unique<objectstore::MemoryObjectStore>(registry);
    ClusterDeploymentOptions options;
    options.num_workers = num_workers;
    options.shards_per_worker = shards_per_worker;
    options.worker.schema = logblock::RequestLogSchema();
    options.worker.replicated = true;
    options.worker.wal_dir = dir_.string();
    options.worker.wal.sync_policy =
        seed % 2 == 0 ? SyncPolicy::kOnSync : SyncPolicy::kPerRecord;
    options.worker.wal.segment_target_bytes = 512 + (seed % 7) * 128;
    options.registry = registry;
    auto cluster = Cluster::Open(store_.get(), options);
    ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
    cluster_ = std::move(cluster).value();
  }

  // The worker currently serving `tenant` (its initial single-shard route).
  uint32_t WorkerOfTenant(uint64_t tenant) {
    cluster_->controller()->EnsureTenantRoute(tenant);
    const flow::RouteTable routes = cluster_->controller()->routes();
    const auto* weights = routes.Get(tenant);
    EXPECT_NE(weights, nullptr);
    EXPECT_FALSE(weights->empty());
    return cluster_->controller()->WorkerForShard(weights->begin()->first);
  }

  // Writes `n` acked marker batches across `num_tenants` tenants, retrying
  // through the control cycle when the routed worker is dead (the
  // documented client contract). Only acked writes enter the oracle.
  void WriteAcked(int n, int num_tenants, Random* rng) {
    for (int i = 0; i < n; ++i) {
      WriteAckedTo(1 + rng->Uniform(num_tenants));
      if (::testing::Test::HasFatalFailure()) return;
    }
  }

  // One acked marker write to a specific tenant (oracle updated).
  void WriteAckedTo(uint64_t tenant) {
    const std::string marker = prefix_ + "-m" + std::to_string(next_marker_++);
    const int64_t ts = 1000 + static_cast<int64_t>(next_marker_);
    Status status = cluster_->Write(tenant, MarkerRow(tenant, ts, marker));
    int retries = 0;
    while (!status.ok() && retries++ < 3) {
      // kUnavailable before the control cycle has run is the documented
      // retryable condition; anything else is a real failure.
      ASSERT_EQ(status.code(), StatusCode::kUnavailable) << status.ToString();
      auto cycle = cluster_->RunControlCycle();
      ASSERT_TRUE(cycle.ok()) << cycle.status().ToString();
      status = cluster_->Write(tenant, MarkerRow(tenant, ts, marker));
    }
    ASSERT_TRUE(status.ok()) << status.ToString();
    oracle_[tenant].insert(marker);
  }

  metrics::MetricRegistry registry_;  // outlives cluster_ (reset order)
  fs::path dir_;
  std::unique_ptr<objectstore::MemoryObjectStore> store_;
  std::unique_ptr<Cluster> cluster_;
  Oracle oracle_;
  std::string prefix_ = "fo";
  uint64_t next_marker_ = 0;
};

// ---------------------------------------------------------------------------
// Kill a worker mid-write-workload: zero acked rows lost, queries exact.
// ---------------------------------------------------------------------------

TEST_F(FailoverTest, KillWorkerMidWriteLosesNoAckedRows) {
  const int seeds = SeedCount();
  for (int seed = 1; seed <= seeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    oracle_.clear();
    next_marker_ = 0;
    prefix_ = "kill" + std::to_string(seed);
    TearDown();
    OpenCluster("kill_mid_write_" + std::to_string(seed), 3, 2, seed);
    if (::testing::Test::HasFatalFailure()) return;
    Random rng(seed * 7919 + 3);

    WriteAcked(12, 6, &rng);
    if (::testing::Test::HasFatalFailure()) return;
    // Some rounds archive part of the history first, so the recovery path
    // must merge LogBlocks with the WAL tail.
    if (rng.OneIn(2)) {
      auto built = cluster_->RunBuildPass();
      ASSERT_TRUE(built.ok()) << built.status().ToString();
    }
    WriteAcked(8, 6, &rng);
    if (::testing::Test::HasFatalFailure()) return;

    const uint32_t victim = static_cast<uint32_t>(rng.Uniform(3));
    const CrashMode mode =
        rng.OneIn(2) ? CrashMode::kDropUnsynced : CrashMode::kTornWrite;
    CrashAndKill(*cluster_, victim, mode, &rng);
    if (::testing::Test::HasFatalFailure()) return;

    // The health harvest reports the dead process; the control cycle fails
    // it over and recovers the tail.
    auto cycle = cluster_->RunControlCycle();
    ASSERT_TRUE(cycle.ok()) << cycle.status().ToString();
    ASSERT_EQ(cycle->failovers.size(), 1u);
    EXPECT_EQ(cycle->failovers[0].worker, victim);
    EXPECT_FALSE(cycle->failovers[0].tail_lost);
    CheckPlacementInvariants(*cluster_->controller(), "post-failover");
    EXPECT_TRUE(cluster_->controller()->ShardsOfWorker(victim).empty());

    // The tail replay is exactly-once here (no build-window crash), so the
    // oracle must match exactly: nothing lost, duplicated, or fabricated.
    ExpectOracleExact(*cluster_, oracle_, "after failover");

    // The deployment keeps serving: writes, archiving, queries.
    WriteAcked(6, 6, &rng);
    if (::testing::Test::HasFatalFailure()) return;
    auto built = cluster_->RunBuildPass();
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    ExpectOracleExact(*cluster_, oracle_, "after post-failover writes");
  }
}

// ---------------------------------------------------------------------------
// Kill in the window between LogBlock upload and watermark persist: the
// at-least-once archiving window. Nothing lost; duplicates legal.
// ---------------------------------------------------------------------------

TEST_F(FailoverTest, KillDuringBuildPassLosesNothing) {
  const int seeds = SeedCount();
  for (int seed = 1; seed <= seeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    oracle_.clear();
    next_marker_ = 0;
    prefix_ = "build" + std::to_string(seed);
    TearDown();
    OpenCluster("kill_build_" + std::to_string(seed), 3, 2, seed);
    if (::testing::Test::HasFatalFailure()) return;
    Random rng(seed * 104729 + 11);

    WriteAcked(10, 4, &rng);
    if (::testing::Test::HasFatalFailure()) return;

    // The victim's build pass uploads LogBlocks but "crashes" before the
    // watermark persists; the WAL tail still covers the uploaded rows.
    const uint32_t victim = static_cast<uint32_t>(rng.Uniform(3));
    auto built = cluster_->worker(victim)->RunBuildPass(false);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    CrashAndKill(*cluster_, victim, CrashMode::kDropUnsynced, &rng);
    if (::testing::Test::HasFatalFailure()) return;

    auto cycle = cluster_->RunControlCycle();
    ASSERT_TRUE(cycle.ok()) << cycle.status().ToString();
    ASSERT_EQ(cycle->failovers.size(), 1u);
    CheckPlacementInvariants(*cluster_->controller(), "post-failover");

    // Rows both uploaded and replayed from the tail may appear twice
    // (at-least-once archiving); acked rows must all appear, and nothing
    // the oracle never acked may appear.
    ExpectOracleCovered(*cluster_, oracle_, "after build-window failover");

    WriteAcked(5, 4, &rng);
    if (::testing::Test::HasFatalFailure()) return;
    ExpectOracleCovered(*cluster_, oracle_, "after post-failover writes");
  }
}

// ---------------------------------------------------------------------------
// Wedge via ENOSPC/EIO: a sticky persist error must surface in the health
// report, and with a healthy majority the escalation ladder must repair the
// one wedged replica IN PLACE — no whole-worker failover, no shard moves.
// ---------------------------------------------------------------------------

TEST_F(FailoverTest, WedgedReplicaIsRepairedInPlaceNotFailedOver) {
  OpenCluster("wedge", 3, 2, 2);
  if (::testing::Test::HasFatalFailure()) return;
  Random rng(4242);

  WriteAcked(10, 4, &rng);
  if (::testing::Test::HasFatalFailure()) return;

  // The victim is whichever worker serves tenant 1, so the wedged worker
  // deterministically sees an ack attempt (that is what latches
  // persist_error_ on the raft node).
  const uint32_t victim = WorkerOfTenant(1);
  const uint64_t epoch_before = cluster_->controller()->placement_epoch();

  // EIO at the group-commit fsync of one replica journal: the write is
  // refused (never acked) and the replica wedges fail-stop.
  cluster_->worker(victim)->wal(1)->InjectSyncErrors(1);
  EXPECT_FALSE(cluster_->Write(1, MarkerRow(1, 5000, "never-acked")).ok());

  // The health signal the ROADMAP said was missing: the wedge is visible,
  // down to WHICH replica is wedged.
  const WorkerHealth health = cluster_->worker(victim)->Health();
  EXPECT_EQ(health.wedged_replicas, 1);
  EXPECT_FALSE(health.CanAck());
  int wedged_node = -1;
  for (const auto& replica : health.replicas) {
    if (replica.wedged) wedged_node = replica.node;
  }
  EXPECT_EQ(wedged_node, 1);

  // The control cycle's first rung: one replica is wedged but a healthy
  // majority remains, so the ladder repairs it in place. The worker stays
  // live, its shards stay put, and no failover runs.
  auto cycle = cluster_->RunControlCycle();
  ASSERT_TRUE(cycle.ok()) << cycle.status().ToString();
  EXPECT_TRUE(cycle->failovers.empty());
  ASSERT_EQ(cycle->replica_recoveries.size(), 1u);
  EXPECT_EQ(cycle->replica_recoveries[0].worker, victim);
  EXPECT_EQ(cycle->replica_recoveries[0].replica, 1);
  EXPECT_TRUE(cycle->replica_recoveries[0].ok);
  EXPECT_TRUE(cluster_->controller()->WorkerAlive(victim));
  EXPECT_EQ(cluster_->controller()->placement_epoch(), epoch_before);
  CheckPlacementInvariants(*cluster_->controller(), "post-replica-recovery");

  // The repaired worker can ack again (perhaps after another cycle lets
  // the rejoined replica finish catching up).
  for (int i = 0; i < 5 && !cluster_->worker(victim)->Health().CanAck();
       ++i) {
    ASSERT_TRUE(cluster_->RunControlCycle().ok());
  }
  EXPECT_TRUE(cluster_->worker(victim)->Health().CanAck());

  // The refused write is indeterminate, like any un-acked write: it was
  // appended to the healthy replica journals before the wedge, so recovery
  // may legally resurrect it — but must never lose acked rows or fabricate
  // anything else.
  Oracle maybe;
  maybe[1].insert("never-acked");
  ExpectOracleCovered(*cluster_, oracle_, "after in-place repair", maybe);

  // Writes keep flowing — to the SAME worker, which kept its shards.
  WriteAcked(6, 4, &rng);
  if (::testing::Test::HasFatalFailure()) return;
  ExpectOracleCovered(*cluster_, oracle_, "after post-wedge writes", maybe);
}

// ---------------------------------------------------------------------------
// Repeated offender: a replica that wedges again after every in-place
// repair exhausts its attempt budget and the ladder escalates to the last
// rung — whole-worker failover.
// ---------------------------------------------------------------------------

TEST_F(FailoverTest, RepeatedlyWedgingReplicaEscalatesToFailover) {
  OpenCluster("repeat_wedge", 3, 2, 4);
  if (::testing::Test::HasFatalFailure()) return;
  Random rng(991);

  WriteAcked(8, 4, &rng);
  if (::testing::Test::HasFatalFailure()) return;
  const uint32_t victim = WorkerOfTenant(1);
  const int budget = ClusterDeploymentOptions().escalation.max_recover_attempts;

  int failover_cycles = 0;
  for (int round = 0; round <= budget; ++round) {
    // Re-wedge the same replica before every control cycle: the repair
    // itself succeeds each time, but the fault immediately returns.
    ASSERT_TRUE(cluster_->worker(victim)->InjectReplicaSyncError(1).ok());
    EXPECT_FALSE(cluster_->Write(1, MarkerRow(1, 6000 + round, "wedged")).ok());
    auto cycle = cluster_->RunControlCycle();
    ASSERT_TRUE(cycle.ok()) << cycle.status().ToString();
    if (!cycle->failovers.empty()) {
      EXPECT_EQ(cycle->failovers[0].worker, victim);
      ++failover_cycles;
      break;
    }
    // Every pre-escalation cycle must have tried the in-place rung.
    ASSERT_EQ(cycle->replica_recoveries.size(), 1u);
    EXPECT_EQ(cycle->replica_recoveries[0].replica, 1);
  }
  EXPECT_EQ(failover_cycles, 1);
  EXPECT_FALSE(cluster_->controller()->WorkerAlive(victim));
  CheckPlacementInvariants(*cluster_->controller(), "post-escalation");

  Oracle maybe;
  maybe[1].insert("wedged");  // the refused writes are indeterminate
  ExpectOracleCovered(*cluster_, oracle_, "after escalated failover", maybe);
  WriteAcked(6, 4, &rng);
  if (::testing::Test::HasFatalFailure()) return;
  ExpectOracleCovered(*cluster_, oracle_, "after post-escalation writes",
                      maybe);
}

// ---------------------------------------------------------------------------
// Regression (cluster.cc abort bug): an unhealthy LAST live worker used to
// abort RunControlCycle mid-cycle with kUnavailable, so later phases (tail
// recovery, traffic control) never ran. It must now degrade to a reported
// skip and the cycle must complete.
// ---------------------------------------------------------------------------

TEST_F(FailoverTest, UnhealthyLastLiveWorkerIsSkippedNotFatal) {
  OpenCluster("last_live", 2, 2, 6);
  if (::testing::Test::HasFatalFailure()) return;
  Random rng(313);

  WriteAcked(8, 4, &rng);
  if (::testing::Test::HasFatalFailure()) return;

  // Kill worker 0 outright and let the cycle fail it over: worker 1 is now
  // the last live worker.
  CrashAndKill(*cluster_, 0, CrashMode::kDropUnsynced, &rng);
  if (::testing::Test::HasFatalFailure()) return;
  auto cycle = cluster_->RunControlCycle();
  ASSERT_TRUE(cycle.ok()) << cycle.status().ToString();
  ASSERT_EQ(cycle->failovers.size(), 1u);
  ExpectOracleExact(*cluster_, oracle_, "after first failover");

  // Now break the survivor beyond replica-level repair: disconnect two of
  // its three replicas, so no healthy majority remains. Failover is the
  // indicated rung — but there is nowhere to fail over TO.
  ASSERT_TRUE(cluster_->worker(1)->PartitionReplica(1).ok());
  ASSERT_TRUE(cluster_->worker(1)->PartitionReplica(2).ok());
  EXPECT_FALSE(cluster_->worker(1)->Health().CanAck());

  // The cycle must NOT abort: the skip is reported and the remaining
  // phases still run (traffic control fills in the report).
  cycle = cluster_->RunControlCycle();
  ASSERT_TRUE(cycle.ok()) << cycle.status().ToString();
  EXPECT_TRUE(cycle->failovers.empty());
  ASSERT_EQ(cycle->skipped.size(), 1u);
  EXPECT_EQ(cycle->skipped[0], 1u);
  EXPECT_TRUE(cluster_->controller()->WorkerAlive(1));
  CheckPlacementInvariants(*cluster_->controller(), "after skipped cycle");

  // Heal the partitions: the ladder's replica rung takes over once a
  // healthy majority is back, and the worker acks again.
  ASSERT_TRUE(cluster_->worker(1)->RecoverReplica(1).ok());
  ASSERT_TRUE(cluster_->worker(1)->RecoverReplica(2).ok());
  for (int i = 0; i < 5 && !cluster_->worker(1)->Health().CanAck(); ++i) {
    ASSERT_TRUE(cluster_->RunControlCycle().ok());
  }
  EXPECT_TRUE(cluster_->worker(1)->Health().CanAck());
  WriteAcked(4, 4, &rng);
  if (::testing::Test::HasFatalFailure()) return;
  ExpectOracleExact(*cluster_, oracle_, "after healing the last worker");
}

// ---------------------------------------------------------------------------
// Rebalance-back: a worker that rejoins empty after failover is drained
// shards by the next control cycle, under one epoch bump, and serves them.
// ---------------------------------------------------------------------------

TEST_F(FailoverTest, RejoinedEmptyWorkerIsDrainedShardsByNextCycle) {
  OpenCluster("rebalance_back", 3, 2, 8);
  if (::testing::Test::HasFatalFailure()) return;
  Random rng(555);

  WriteAcked(12, 6, &rng);
  if (::testing::Test::HasFatalFailure()) return;
  CrashAndKill(*cluster_, 1, CrashMode::kDropUnsynced, &rng);
  if (::testing::Test::HasFatalFailure()) return;
  auto cycle = cluster_->RunControlCycle();
  ASSERT_TRUE(cycle.ok()) << cycle.status().ToString();
  ASSERT_EQ(cycle->failovers.size(), 1u);

  // Rejoin empty, then run the next cycle: the rebalance-back pass drains
  // shards onto the rejoined worker up to its fair share, in one epoch.
  ASSERT_TRUE(cluster_->RestartWorker(1).ok());
  EXPECT_TRUE(cluster_->controller()->ShardsOfWorker(1).empty());
  const uint64_t epoch_before = cluster_->controller()->placement_epoch();
  cycle = cluster_->RunControlCycle();
  ASSERT_TRUE(cycle.ok()) << cycle.status().ToString();
  EXPECT_FALSE(cycle->rebalanced.empty());
  for (const auto& [shard, target] : cycle->rebalanced) {
    EXPECT_EQ(target, 1u) << "shard " << shard;
    EXPECT_EQ(cluster_->controller()->WorkerForShard(shard), 1u);
  }
  EXPECT_EQ(cluster_->controller()->placement_epoch(), epoch_before + 1);
  const size_t fair =
      cluster_->controller()->num_shards() / 3;  // 3 live workers
  EXPECT_EQ(cluster_->controller()->ShardsOfWorker(1).size(), fair);
  CheckPlacementInvariants(*cluster_->controller(), "post-rebalance-back");

  // A second cycle moves nothing more (the pass converges).
  cycle = cluster_->RunControlCycle();
  ASSERT_TRUE(cycle.ok()) << cycle.status().ToString();
  EXPECT_TRUE(cycle->rebalanced.empty());

  // The fleet keeps serving reads and writes across the new placement.
  ExpectOracleExact(*cluster_, oracle_, "after rebalance-back");
  WriteAcked(8, 6, &rng);
  if (::testing::Test::HasFatalFailure()) return;
  ExpectOracleExact(*cluster_, oracle_, "after post-rebalance writes");
}

// ---------------------------------------------------------------------------
// Failover then rejoin: the dead worker returns as a fresh empty worker,
// eligible as a target for the NEXT failover.
// ---------------------------------------------------------------------------

TEST_F(FailoverTest, FailedOverWorkerRejoinsFreshAndTakesNewShards) {
  OpenCluster("rejoin", 3, 2, 1);
  if (::testing::Test::HasFatalFailure()) return;
  Random rng(777);

  WriteAcked(12, 6, &rng);
  if (::testing::Test::HasFatalFailure()) return;
  CrashAndKill(*cluster_, 1, CrashMode::kDropUnsynced, &rng);
  if (::testing::Test::HasFatalFailure()) return;
  auto cycle = cluster_->RunControlCycle();
  ASSERT_TRUE(cycle.ok()) << cycle.status().ToString();
  ASSERT_EQ(cycle->failovers.size(), 1u);
  ExpectOracleExact(*cluster_, oracle_, "after first failover");

  // Rejoin: fresh, empty, live, no shards — and healthy.
  ASSERT_TRUE(cluster_->RestartWorker(1).ok());
  EXPECT_TRUE(cluster_->controller()->WorkerAlive(1));
  EXPECT_TRUE(cluster_->controller()->ShardsOfWorker(1).empty());
  EXPECT_TRUE(cluster_->worker(1)->Health().CanAck());
  ExpectOracleExact(*cluster_, oracle_, "after rejoin");

  // A later failover reassigns onto the rejoined worker (it has the fewest
  // shards), proving it is a real placement target again.
  WriteAcked(6, 6, &rng);
  if (::testing::Test::HasFatalFailure()) return;
  CrashAndKill(*cluster_, 2, CrashMode::kTornWrite, &rng);
  if (::testing::Test::HasFatalFailure()) return;
  cycle = cluster_->RunControlCycle();
  ASSERT_TRUE(cycle.ok()) << cycle.status().ToString();
  ASSERT_EQ(cycle->failovers.size(), 1u);
  bool rejoined_got_shards = false;
  for (const auto& [shard, worker] : cycle->failovers[0].moved) {
    (void)shard;
    if (worker == 1) rejoined_got_shards = true;
  }
  EXPECT_TRUE(rejoined_got_shards);
  CheckPlacementInvariants(*cluster_->controller(), "post-second-failover");
  ExpectOracleExact(*cluster_, oracle_, "after second failover");

  WriteAcked(6, 6, &rng);
  if (::testing::Test::HasFatalFailure()) return;
  ExpectOracleExact(*cluster_, oracle_, "final");
}

// ---------------------------------------------------------------------------
// Double failure: two of four workers die; both fail over; nothing lost.
// ---------------------------------------------------------------------------

TEST_F(FailoverTest, DoubleWorkerFailureLosesNothing) {
  const int seeds = SeedCount();
  for (int seed = 1; seed <= seeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    oracle_.clear();
    next_marker_ = 0;
    prefix_ = "dbl" + std::to_string(seed);
    TearDown();
    OpenCluster("double_" + std::to_string(seed), 4, 2, seed);
    if (::testing::Test::HasFatalFailure()) return;
    Random rng(seed * 31337 + 5);

    WriteAcked(16, 8, &rng);
    if (::testing::Test::HasFatalFailure()) return;
    if (rng.OneIn(2)) {
      auto built = cluster_->RunBuildPass();
      ASSERT_TRUE(built.ok()) << built.status().ToString();
    }
    WriteAcked(8, 8, &rng);
    if (::testing::Test::HasFatalFailure()) return;

    const uint32_t first = static_cast<uint32_t>(rng.Uniform(4));
    uint32_t second = static_cast<uint32_t>(rng.Uniform(4));
    while (second == first) second = static_cast<uint32_t>(rng.Uniform(4));
    CrashAndKill(*cluster_, first, CrashMode::kDropUnsynced, &rng);
    if (::testing::Test::HasFatalFailure()) return;
    CrashAndKill(*cluster_, second, CrashMode::kTornWrite, &rng);
    if (::testing::Test::HasFatalFailure()) return;

    // One control cycle handles both: placements move first, then both
    // tails recover into the surviving pair.
    auto cycle = cluster_->RunControlCycle();
    ASSERT_TRUE(cycle.ok()) << cycle.status().ToString();
    ASSERT_EQ(cycle->failovers.size(), 2u);
    CheckPlacementInvariants(*cluster_->controller(), "post-double-failover");
    ExpectOracleExact(*cluster_, oracle_, "after double failover");

    WriteAcked(8, 8, &rng);
    if (::testing::Test::HasFatalFailure()) return;
    ExpectOracleExact(*cluster_, oracle_, "after post-failover writes");
  }
}

// ---------------------------------------------------------------------------
// Satellite fix: a write routed to a dead worker before the control cycle
// runs is a retryable kUnavailable, not a crash.
// ---------------------------------------------------------------------------

TEST_F(FailoverTest, WriteToDeadWorkerIsRetryableUntilControlCycleRuns) {
  OpenCluster("retryable", 2, 2, 1);
  if (::testing::Test::HasFatalFailure()) return;
  Random rng(99);

  WriteAcked(8, 4, &rng);
  if (::testing::Test::HasFatalFailure()) return;

  // Kill the worker serving tenant 1 WITHOUT running the control cycle:
  // the stale route must surface as retryable, not as a crash.
  const uint32_t victim = WorkerOfTenant(1);
  CrashAndKill(*cluster_, victim, CrashMode::kDropUnsynced, &rng);
  if (::testing::Test::HasFatalFailure()) return;

  const Status stale = cluster_->Write(1, MarkerRow(1, 9000, "stale-route"));
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.code(), StatusCode::kUnavailable) << stale.ToString();

  auto cycle = cluster_->RunControlCycle();
  ASSERT_TRUE(cycle.ok()) << cycle.status().ToString();
  ASSERT_TRUE(cluster_->Write(1, MarkerRow(1, 9001, "retried")).ok());
  oracle_[1].insert("retried");
  ExpectOracleExact(*cluster_, oracle_, "after retry");
}

// ---------------------------------------------------------------------------
// Satellite regression: AdvanceWalWatermark on survivors never touches the
// dead worker's WAL directory; its segments are deleted only at rejoin,
// after the tail was recovered. A vanished directory is declared loss
// bounded by the archived watermark, never a crash.
// ---------------------------------------------------------------------------

TEST_F(FailoverTest, DeadWorkerWalSurvivesUntilTailRecoveredThenRejoinWipes) {
  OpenCluster("wal_retention", 3, 2, 2);
  if (::testing::Test::HasFatalFailure()) return;
  Random rng(1234);

  const uint32_t victim = WorkerOfTenant(1);

  WriteAcked(12, 6, &rng);
  if (::testing::Test::HasFatalFailure()) return;
  auto built = cluster_->RunBuildPass();  // archive a prefix
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  // A guaranteed un-archived tail on the victim: acked writes to a tenant
  // it serves, after the build pass.
  for (int i = 0; i < 3; ++i) {
    WriteAckedTo(1);
    if (::testing::Test::HasFatalFailure()) return;
  }

  CrashAndKill(*cluster_, victim, CrashMode::kDropUnsynced, &rng);
  if (::testing::Test::HasFatalFailure()) return;

  const fs::path victim_dir = dir_ / ("worker-" + std::to_string(victim));
  auto segment_count = [&victim_dir]() {
    size_t count = 0;
    for (int node = 0; node < 3; ++node) {
      const fs::path node_dir = victim_dir / ("node-" + std::to_string(node));
      if (!fs::exists(node_dir)) continue;
      for (const auto& entry : fs::directory_iterator(node_dir)) {
        (void)entry;
        ++count;
      }
    }
    return count;
  };
  const size_t segments_at_death = segment_count();
  ASSERT_GT(segments_at_death, 0u);

  // Survivors keep writing, archiving and GC-ing their own WALs. The dead
  // worker's directory must not shrink: its tail is not yet recovered.
  // Writes target tenants served by survivors, so the client retry path
  // does not trigger the failover before the assertions below.
  std::vector<uint64_t> survivor_tenants;
  for (uint64_t t = 10; t < 60 && survivor_tenants.size() < 4; ++t) {
    if (WorkerOfTenant(t) != victim) survivor_tenants.push_back(t);
  }
  ASSERT_FALSE(survivor_tenants.empty());
  for (int i = 0; i < 8; ++i) {
    WriteAckedTo(survivor_tenants[i % survivor_tenants.size()]);
    if (::testing::Test::HasFatalFailure()) return;
  }
  built = cluster_->RunBuildPass();
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_EQ(segment_count(), segments_at_death)
      << "survivor watermark advance touched the dead worker's WAL";

  // Failover recovers the un-archived tail (the post-build writes to
  // tenant 1 were never archived, so there must be entries to replay).
  auto cycle = cluster_->RunControlCycle();
  ASSERT_TRUE(cycle.ok()) << cycle.status().ToString();
  ASSERT_EQ(cycle->failovers.size(), 1u);
  EXPECT_FALSE(cycle->failovers[0].tail_lost);
  EXPECT_GT(cycle->failovers[0].tail_entries_recovered, 0u);
  ExpectOracleExact(*cluster_, oracle_, "after failover");

  // The recovered journal still exists after failover — only the rejoin
  // deletes it (so a failover interrupted before its ack can re-run).
  EXPECT_GT(segment_count(), 0u);
  ASSERT_TRUE(cluster_->RestartWorker(victim).ok());
  // The rejoined worker's journal is fresh: its raft log holds nothing.
  EXPECT_EQ(cluster_->worker(victim)->raft()->node(0).log_size(),
            cluster_->worker(victim)->raft()->node(0).log_base_index());
  ExpectOracleExact(*cluster_, oracle_, "after rejoin wipe");
}

TEST_F(FailoverTest, VanishedWalDirDeclaresTailLostAtArchivedWatermark) {
  OpenCluster("lost_dir", 3, 2, 1);
  if (::testing::Test::HasFatalFailure()) return;
  Random rng(555);

  WriteAcked(10, 4, &rng);
  if (::testing::Test::HasFatalFailure()) return;
  auto built = cluster_->RunBuildPass();  // everything so far archived
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const Oracle archived = oracle_;

  WriteAcked(6, 4, &rng);  // acked tail; the victim's share dies with it
  if (::testing::Test::HasFatalFailure()) return;

  const uint32_t victim = 2;
  ASSERT_TRUE(cluster_->KillWorker(victim).ok());
  fs::remove_all(dir_ / ("worker-" + std::to_string(victim)));  // disks gone

  auto cycle = cluster_->RunControlCycle();
  ASSERT_TRUE(cycle.ok()) << cycle.status().ToString();
  ASSERT_EQ(cycle->failovers.size(), 1u);
  EXPECT_TRUE(cycle->failovers[0].tail_lost);
  EXPECT_EQ(cycle->failovers[0].tail_entries_recovered, 0u);

  // The data-loss boundary: everything archived-through remains visible;
  // acked-but-unarchived rows on the lost machine are gone, and nothing is
  // fabricated.
  for (const auto& [tenant, expected] : archived) {
    const auto visible = QueryMarkers(*cluster_, tenant);
    for (const auto& marker : expected) {
      EXPECT_TRUE(visible.count(marker) > 0)
          << "archived marker " << marker << " lost";
    }
    for (const auto& marker : visible) {
      EXPECT_TRUE(oracle_[tenant].count(marker) > 0)
          << "fabricated marker " << marker;
    }
  }
  CheckPlacementInvariants(*cluster_->controller(), "post-lost-dir");
}

// ---------------------------------------------------------------------------
// Property tests: the dynamic placement map and RouteTable through seeded
// failover / rejoin / scale-out cycles.
// ---------------------------------------------------------------------------

TEST(PlacementPropertyTest, SeededFailoverRejoinCyclesKeepInvariants) {
  const int seeds = std::max(SeedCount(), 4);
  for (int seed = 1; seed <= seeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Random rng(static_cast<uint64_t>(seed) * 6364136223846793005ull +
               1442695040888963407ull);

    ControllerOptions options;
    options.shard_capacity = 1000;
    options.worker_capacity = 4000;
    options.edge_max_flow = 800;
    Controller controller(static_cast<uint32_t>(3 + rng.Uniform(3)),
                          static_cast<uint32_t>(1 + rng.Uniform(3)), options);
    for (uint64_t tenant = 1; tenant <= 20; ++tenant) {
      controller.EnsureTenantRoute(tenant);
    }

    uint64_t last_epoch = controller.placement_epoch();
    for (int op = 0; op < 40; ++op) {
      const uint32_t n = controller.num_workers();
      std::vector<uint32_t> live, dead;
      for (uint32_t w = 0; w < n; ++w) {
        (controller.WorkerAlive(w) ? live : dead).push_back(w);
      }
      const uint32_t pick = static_cast<uint32_t>(rng.Uniform(10));
      if (pick < 5 && live.size() > 1) {
        const uint32_t victim = live[rng.Uniform(live.size())];
        auto decision = controller.FailoverWorker(victim);
        ASSERT_TRUE(decision.ok()) << decision.status().ToString();
        // The fencing epoch strictly advances: no token is ever reused.
        EXPECT_GT(decision->epoch, last_epoch);
        last_epoch = decision->epoch;
        // Every moved shard landed on a live survivor.
        for (const auto& [shard, worker] : decision->moved) {
          EXPECT_TRUE(controller.WorkerAlive(worker)) << "shard " << shard;
        }
        EXPECT_TRUE(controller.ShardsOfWorker(victim).empty());
      } else if (pick < 7 && !dead.empty()) {
        ASSERT_TRUE(
            controller.ReviveWorker(dead[rng.Uniform(dead.size())]).ok());
      } else if (pick < 8) {
        controller.AddWorker();
      } else {
        // A traffic-control cycle with random hot load must also keep the
        // route table valid.
        std::map<uint64_t, int64_t> tenants;
        std::map<uint32_t, int64_t> shards;
        std::map<uint32_t, int64_t> workers;
        for (uint64_t t = 1; t <= 20; ++t) {
          tenants[t] = static_cast<int64_t>(rng.Uniform(2000));
        }
        const flow::RouteTable routes = controller.routes();
        for (const auto& [tenant, weights] : routes.rules()) {
          for (const auto& [shard, weight] : weights) {
            const int64_t flow = static_cast<int64_t>(weight * tenants[tenant]);
            shards[shard] += flow;
            workers[controller.WorkerForShard(shard)] += flow;
          }
        }
        controller.RunTrafficControl(tenants, shards, workers);
      }

      // The standing invariants, after every operation.
      for (uint32_t s = 0; s < controller.num_shards(); ++s) {
        EXPECT_TRUE(controller.WorkerAlive(controller.WorkerForShard(s)))
            << "shard " << s << " on dead worker after op " << op;
      }
      const flow::RouteTable current = controller.routes();
      std::string error;
      EXPECT_TRUE(current.Validate(1e-6, &error)) << error;
      for (const auto& [tenant, weights] : current.rules()) {
        (void)tenant;
        for (const auto& [shard, weight] : weights) {
          (void)weight;
          EXPECT_TRUE(
              controller.WorkerAlive(controller.WorkerForShard(shard)));
        }
      }
    }
  }
}

TEST(PlacementPropertyTest, PlacementRoundTripsThroughFailoverAndRejoin) {
  Controller controller(4, 2);
  std::vector<uint32_t> before;
  for (uint32_t s = 0; s < 8; ++s) {
    before.push_back(controller.WorkerForShard(s));
  }

  auto decision = controller.FailoverWorker(1);
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(decision->moved.size(), 2u);  // worker 1 owned shards 2,3
  EXPECT_FALSE(controller.WorkerAlive(1));
  // Double failover of the same worker is rejected (idempotence guard).
  EXPECT_FALSE(controller.FailoverWorker(1).ok());

  ASSERT_TRUE(controller.ReviveWorker(1).ok());
  EXPECT_TRUE(controller.WorkerAlive(1));
  EXPECT_TRUE(controller.ShardsOfWorker(1).empty());
  // Double revive is rejected too.
  EXPECT_FALSE(controller.ReviveWorker(1).ok());

  // Round trip: every shard still has exactly one live owner; shards that
  // never belonged to worker 1 did not move.
  for (uint32_t s = 0; s < 8; ++s) {
    EXPECT_TRUE(controller.WorkerAlive(controller.WorkerForShard(s)));
    if (before[s] != 1) {
      EXPECT_EQ(controller.WorkerForShard(s), before[s]);
    }
  }

  // Failing over another worker now prefers the empty rejoined worker 1.
  auto second = controller.FailoverWorker(2);
  ASSERT_TRUE(second.ok());
  for (const auto& [shard, worker] : second->moved) {
    (void)shard;
    EXPECT_EQ(worker, 1u);
  }
}

// Legacy per-instance counters and the shared registry must agree while
// the deployment is quiet (no restarts: the live WAL objects are the only
// producers ever bound to this isolated registry, so the per-instance sums
// equal the cumulative registry cells exactly).
TEST_F(FailoverTest, RegistryMirrorsLegacyCountersExactly) {
  OpenCluster("registry_equality", 3, 2, /*seed=*/1, &registry_);
  for (int i = 0; i < 10; ++i) WriteAckedTo(1);
  for (int i = 0; i < 5; ++i) WriteAckedTo(2);
  ASSERT_TRUE(cluster_->RunBuildPass().ok());

  const auto snap = registry_.SnapshotMap();
  // Broker routing counters: one row per acked marker write, no failovers
  // so no tail replays inflate them.
  EXPECT_EQ(snap.at("cluster.rows_routed{tenant=1}"), 10);
  EXPECT_EQ(snap.at("cluster.rows_routed{tenant=2}"), 5);

  uint64_t legacy_fsyncs = 0;
  uint64_t legacy_batches = 0;
  for (uint32_t id = 0; id < cluster_->num_workers(); ++id) {
    Worker* worker = cluster_->worker(id);
    ASSERT_NE(worker, nullptr);
    for (int node = 0; node < 3; ++node) {
      legacy_fsyncs += worker->wal(node)->fsyncs_issued();
      legacy_batches += worker->wal(node)->sync_batches();
    }
  }
  EXPECT_EQ(snap.at("wal.fsyncs_issued"),
            static_cast<int64_t>(legacy_fsyncs));
  EXPECT_EQ(snap.at("wal.sync_batches"),
            static_cast<int64_t>(legacy_batches));
}

TEST(PlacementPropertyTest, LastLiveWorkerCannotBeFailedOver) {
  Controller controller(2, 2);
  ASSERT_TRUE(controller.FailoverWorker(0).ok());
  auto last = controller.FailoverWorker(1);
  EXPECT_FALSE(last.ok());
  EXPECT_EQ(last.status().code(), StatusCode::kUnavailable);
  // The refused failover changed nothing.
  EXPECT_TRUE(controller.WorkerAlive(1));
  for (uint32_t s = 0; s < controller.num_shards(); ++s) {
    EXPECT_EQ(controller.WorkerForShard(s), 1u);
  }
}

}  // namespace
}  // namespace logstore::cluster
