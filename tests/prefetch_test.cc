#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cache/block_manager.h"
#include "common/random.h"
#include "logblock/logblock_reader.h"
#include "logblock/logblock_writer.h"
#include "objectstore/memory_object_store.h"
#include "objectstore/simulated_object_store.h"
#include "prefetch/cached_source.h"
#include "prefetch/prefetch_service.h"

namespace logstore::prefetch {
namespace {

std::string MakeObject(size_t n, uint64_t seed) {
  Random rng(seed);
  std::string data(n, '\0');
  for (size_t i = 0; i < n; ++i) data[i] = static_cast<char>(rng.Uniform(256));
  return data;
}

class PrefetchServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = std::make_unique<objectstore::MemoryObjectStore>();
    auto cache = cache::BlockManager::Open({.memory_capacity_bytes = 8 << 20,
                                            .memory_shards = 4,
                                            .ssd_dir = ""});
    ASSERT_TRUE(cache.ok());
    cache_ = std::move(cache).value();
  }

  std::unique_ptr<objectstore::MemoryObjectStore> store_;
  std::unique_ptr<cache::BlockManager> cache_;
};

TEST_F(PrefetchServiceTest, ReadAssemblesAcrossBlocks) {
  const std::string data = MakeObject(10000, 1);
  ASSERT_TRUE(store_->Put("obj", data).ok());
  PrefetchService service(store_.get(), cache_.get(),
                          {.threads = 4, .block_size = 1024});

  // Spans multiple aligned blocks with odd offsets.
  for (auto [offset, size] : std::vector<std::pair<uint64_t, uint64_t>>{
           {0, 10}, {1000, 100}, {1023, 2}, {5000, 4000}, {9990, 10}}) {
    auto got = service.Read("obj", offset, size);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, data.substr(offset, size)) << offset << "+" << size;
  }
}

TEST_F(PrefetchServiceTest, ReadBeyondObjectFails) {
  ASSERT_TRUE(store_->Put("obj", "0123456789").ok());
  PrefetchService service(store_.get(), cache_.get(),
                          {.threads = 2, .block_size = 4});
  EXPECT_FALSE(service.Read("obj", 5, 100).ok());
  EXPECT_FALSE(service.Read("missing", 0, 1).ok());
}

TEST_F(PrefetchServiceTest, CacheAvoidsRefetch) {
  const std::string data = MakeObject(4096, 2);
  ASSERT_TRUE(store_->Put("obj", data).ok());
  PrefetchService service(store_.get(), cache_.get(),
                          {.threads = 2, .block_size = 1024});

  ASSERT_TRUE(service.Read("obj", 0, 4096).ok());
  const uint64_t first_pass = store_->stats().range_gets.load();
  EXPECT_EQ(first_pass, 1u);  // 4 blocks coalesced into one ranged GET

  ASSERT_TRUE(service.Read("obj", 0, 4096).ok());
  EXPECT_EQ(store_->stats().range_gets.load(), first_pass);  // all cached
}

TEST_F(PrefetchServiceTest, PrefetchWarmsCache) {
  const std::string data = MakeObject(8192, 3);
  ASSERT_TRUE(store_->Put("obj", data).ok());
  PrefetchService service(store_.get(), cache_.get(),
                          {.threads = 8, .block_size = 1024});

  service.Prefetch("obj", {{0, 4096}, {6000, 1000}});
  service.WaitIdle();
  const uint64_t prefetched = store_->stats().range_gets.load();
  EXPECT_EQ(prefetched, 2u);  // two runs: blocks 0-3, blocks 5-6

  auto got = service.Read("obj", 0, 4096);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, data.substr(0, 4096));
  EXPECT_EQ(store_->stats().range_gets.load(), prefetched);  // no new IO
}

TEST_F(PrefetchServiceTest, OverlappingRangesDedup) {
  const std::string data = MakeObject(4096, 4);
  ASSERT_TRUE(store_->Put("obj", data).ok());
  PrefetchService service(store_.get(), cache_.get(),
                          {.threads = 8, .block_size = 1024});
  // Three overlapping ranges all inside blocks 0..2: one coalesced GET.
  service.Prefetch("obj", {{0, 2000}, {500, 1500}, {100, 2500}});
  service.WaitIdle();
  EXPECT_EQ(store_->stats().range_gets.load(), 1u);
}

TEST_F(PrefetchServiceTest, ParallelPrefetchOverlapsLatency) {
  // With simulated per-request latency, prefetching N blocks on T threads
  // should take ~N/T * latency, much less than serial N * latency.
  objectstore::SimulatedStoreOptions sim;
  sim.first_byte_latency_us = 10000;  // 10 ms
  sim.bandwidth_bytes_per_us = 1e9;
  sim.max_concurrent_requests = 64;
  sim.time_scale = 1.0;
  auto base = std::make_unique<objectstore::MemoryObjectStore>();
  ASSERT_TRUE(base->Put("obj", MakeObject(16 * 1024, 5)).ok());
  objectstore::SimulatedObjectStore slow(std::move(base), sim);

  PrefetchService service(&slow, cache_.get(),
                          {.threads = 16, .block_size = 1024});
  const auto start = std::chrono::steady_clock::now();
  // Strided single-block ranges cannot coalesce: 8 distinct requests,
  // which must overlap on the thread pool rather than run serially.
  std::vector<ByteRange> ranges;
  for (uint64_t b = 0; b < 16; b += 2) ranges.push_back({b * 1024, 1});
  service.Prefetch("obj", ranges);
  service.WaitIdle();
  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  // Serial would be >= 160 ms; parallel on 16 threads should be well under.
  EXPECT_LT(elapsed_ms, 100);
  // And the data must be readable without further IO cost.
  auto got = service.Read("obj", 1000, 2000);
  ASSERT_TRUE(got.ok());
}

TEST_F(PrefetchServiceTest, ConcurrentReadersOfSameRunFetchOnce) {
  // Many threads read the same uncached run at once. The in-flight set must
  // collapse them onto a single ranged GET, and every reader must still see
  // byte-exact data. Simulated latency keeps the race window wide open.
  objectstore::SimulatedStoreOptions sim;
  sim.first_byte_latency_us = 5000;  // 5 ms: all threads pile up in-flight
  sim.bandwidth_bytes_per_us = 1e9;
  sim.max_concurrent_requests = 64;
  sim.time_scale = 1.0;
  const std::string data = MakeObject(64 * 1024, 6);
  auto base = std::make_unique<objectstore::MemoryObjectStore>();
  ASSERT_TRUE(base->Put("obj", data).ok());
  objectstore::SimulatedObjectStore slow(std::move(base), sim);

  PrefetchService service(&slow, cache_.get(),
                          {.threads = 8, .block_size = 4096});

  constexpr int kThreads = 16;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      // Same run of blocks for everyone, offsets staggered inside it.
      auto got = service.Read("obj", 100, 16000);
      if (!got.ok()) {
        failures++;
      } else if (*got != data.substr(100, 16000)) {
        mismatches++;
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  // One coalesced fetch for the whole run; losers of the race waited on the
  // in-flight entry instead of issuing their own GET.
  EXPECT_EQ(service.fetches_issued(), 1u);
  EXPECT_EQ(slow.stats().range_gets.load(), 1u);
  EXPECT_EQ(service.fetch_errors(), 0u);
}

TEST_F(PrefetchServiceTest, WorksWithoutCache) {
  ASSERT_TRUE(store_->Put("obj", "abcdefgh").ok());
  PrefetchService service(store_.get(), nullptr,
                          {.threads = 2, .block_size = 4});
  auto got = service.Read("obj", 2, 4);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "cdef");
  service.Prefetch("obj", {{0, 8}});  // no-op, must not crash
  service.WaitIdle();
}

TEST_F(PrefetchServiceTest, CachedSourceServesLogBlocks) {
  // End-to-end: build a LogBlock, upload, read through the cached source.
  logblock::RowBatch batch(logblock::RequestLogSchema());
  for (uint32_t i = 0; i < 300; ++i) {
    batch.AddRow({logblock::Value::Int64(1), logblock::Value::Int64(i),
                  logblock::Value::String("10.0.0." + std::to_string(i % 5)),
                  logblock::Value::Int64(i % 100),
                  logblock::Value::String("false"),
                  logblock::Value::String("request completed ok")});
  }
  auto built = logblock::BuildLogBlock(batch, 1, {.rows_per_block = 64});
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(store_->Put("tenant1/block0.tar", built->data).ok());

  PrefetchService service(store_.get(), cache_.get(),
                          {.threads = 4, .block_size = 4096});
  auto source =
      std::make_shared<CachedObjectSource>(&service, "tenant1/block0.tar");
  auto reader = logblock::LogBlockReader::Open(source);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ((*reader)->num_rows(), 300u);

  // Prefetch the ip column's blocks, then read them.
  std::vector<ByteRange> ranges;
  for (size_t b = 0; b < (*reader)->meta().columns[2].blocks.size(); ++b) {
    auto range = (*reader)->ColumnBlockRange(2, b);
    ASSERT_TRUE(range.ok());
    ranges.push_back(*range);
  }
  ASSERT_TRUE(source->Prefetch(ranges).ok());
  service.WaitIdle();
  auto decoded = (*reader)->ReadColumnBlock(2, 0);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->strs[0], "10.0.0.0");
}

TEST_F(PrefetchServiceTest, DirectSourceBypassesCache) {
  ASSERT_TRUE(store_->Put("obj", "0123456789").ok());
  DirectObjectSource source(store_.get(), "obj");
  auto got = source.ReadRange(2, 5);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "23456");
  EXPECT_TRUE(source.Prefetch({{0, 10}}).ok());  // default no-op
}

// Records GetRange key order and blocks the FIRST fetch until released, so
// a test can enqueue prefetch work while the (single) dispatcher is pinned.
class BlockingRecordingStore : public objectstore::ObjectStore {
 public:
  explicit BlockingRecordingStore(objectstore::ObjectStore* base)
      : base_(base) {}

  Status Put(const std::string& key, const Slice& data) override {
    return base_->Put(key, data);
  }
  Result<std::string> Get(const std::string& key) override {
    return base_->Get(key);
  }
  Result<std::string> GetRange(const std::string& key, uint64_t offset,
                               uint64_t length) override {
    {
      std::unique_lock<std::mutex> lock(mu_);
      keys_.push_back(key);
      const bool first = keys_.size() == 1;
      started_.notify_all();
      if (first) gate_.wait(lock, [&] { return gate_open_; });
    }
    return base_->GetRange(key, offset, length);
  }
  Result<uint64_t> Head(const std::string& key) override {
    return base_->Head(key);
  }
  Result<std::vector<std::string>> List(const std::string& prefix) override {
    return base_->List(prefix);
  }
  Status Delete(const std::string& key) override { return base_->Delete(key); }
  objectstore::ObjectStoreStats& stats() override { return base_->stats(); }

  void WaitForFirstFetch() {
    std::unique_lock<std::mutex> lock(mu_);
    started_.wait(lock, [&] { return !keys_.empty(); });
  }
  void OpenGate() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      gate_open_ = true;
    }
    gate_.notify_all();
  }
  std::vector<std::string> keys() {
    std::lock_guard<std::mutex> lock(mu_);
    return keys_;
  }

 private:
  objectstore::ObjectStore* base_;
  std::mutex mu_;
  std::condition_variable started_, gate_;
  bool gate_open_ = false;
  std::vector<std::string> keys_;
};

TEST_F(PrefetchServiceTest, OwnersAreServedRoundRobin) {
  // A wide query flooding the prefetch queue must not starve a concurrent
  // narrow one: pending runs are queued per owner and dispatched
  // round-robin, so owner 2's single run is served right after owner 1's
  // in-flight fetch — not behind its whole backlog.
  ASSERT_TRUE(store_->Put("A", MakeObject(8192, 7)).ok());
  ASSERT_TRUE(store_->Put("B", MakeObject(1024, 8)).ok());
  BlockingRecordingStore recording(store_.get());

  // One dispatcher thread; coalescing capped at one block so owner 1's
  // request splits into 8 independent runs.
  PrefetchService service(&recording, cache_.get(),
                          {.threads = 1,
                           .block_size = 1024,
                           .max_coalesced_bytes = 1024});

  service.Prefetch(/*owner=*/1, "A", {{0, 8192}});
  recording.WaitForFirstFetch();  // dispatcher now pinned on A's first run
  service.Prefetch(/*owner=*/2, "B", {{0, 1024}});
  recording.OpenGate();
  service.WaitIdle();

  const auto keys = recording.keys();
  ASSERT_EQ(keys.size(), 9u);
  EXPECT_EQ(keys[0], "A");
  EXPECT_EQ(keys[1], "B") << "owner 2 was starved behind owner 1's backlog";
  for (size_t i = 2; i < keys.size(); ++i) EXPECT_EQ(keys[i], "A");

  // Everything actually landed in the cache.
  auto b = service.Read("B", 0, 1024);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(recording.keys().size(), 9u) << "Read(B) should be a cache hit";
}

TEST_F(PrefetchServiceTest, UntaggedPrefetchStillWorks) {
  // The owner-less overload (legacy call sites) funnels into owner 0.
  const std::string data = MakeObject(4096, 9);
  ASSERT_TRUE(store_->Put("obj", data).ok());
  PrefetchService service(store_.get(), cache_.get(),
                          {.threads = 2, .block_size = 1024});
  service.Prefetch("obj", {{0, 4096}});
  service.WaitIdle();
  const uint64_t fetched = service.fetches_issued();
  EXPECT_GT(fetched, 0u);
  auto got = service.Read("obj", 0, 4096);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, data);
  EXPECT_EQ(service.fetches_issued(), fetched) << "Read should hit the cache";
}

}  // namespace
}  // namespace logstore::prefetch
