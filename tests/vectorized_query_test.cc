// Vectorized-execution property tests (§15): the selection-bitmap kernel
// path must be invisible — byte-identical rows (content AND order) and
// deterministic stats to the row-at-a-time scalar path — across a seeded
// (predicate mix x limit x threads x data-skipping) matrix; aggregation
// pushdown must reproduce the broker-side helpers applied to the full
// no-limit row result; and the kernels/bitmap-fold primitives must agree
// with their per-row reference semantics on randomized inputs.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/data_builder.h"
#include "common/random.h"
#include "index/rowid_set.h"
#include "objectstore/memory_object_store.h"
#include "query/aggregation.h"
#include "query/engine.h"
#include "query/vectorized.h"
#include "rowstore/row_store.h"
#include "workload/loggen.h"
#include "workload/querygen.h"

namespace logstore::query {
namespace {

// --- Kernel / bitmap-fold unit tests (randomized vs per-row reference) ---

TEST(IntersectBitmapTest, MatchesPerRowReference) {
  Random rng(2024);
  for (int round = 0; round < 200; ++round) {
    const uint32_t num_rows = 1 + static_cast<uint32_t>(rng.Uniform(300));
    const uint32_t first_row = static_cast<uint32_t>(rng.Uniform(num_rows));
    const uint32_t count =
        1 + static_cast<uint32_t>(rng.Uniform(num_rows - first_row + 40));

    index::RowIdSet set(num_rows);
    index::RowIdSet reference(num_rows);
    for (uint32_t r = 0; r < num_rows; ++r) {
      if (rng.Uniform(3) != 0) {
        set.Add(r);
        reference.Add(r);
      }
    }

    std::vector<uint64_t> words((count + 63) / 64, 0);
    for (uint32_t j = 0; j < count; ++j) {
      if (rng.Uniform(2) == 0) words[j / 64] |= 1ull << (j % 64);
    }

    set.IntersectBitmap(first_row, words.data(), count);
    // Reference semantics: remove every covered row whose bit is clear;
    // rows outside [first_row, first_row + count) are untouched.
    for (uint32_t j = 0; j < count; ++j) {
      const uint32_t row = first_row + j;
      if (row >= num_rows) break;
      if (((words[j / 64] >> (j % 64)) & 1) == 0) reference.Remove(row);
    }
    ASSERT_EQ(set.ToVector(), reference.ToVector())
        << "round=" << round << " num_rows=" << num_rows
        << " first_row=" << first_row << " count=" << count;
  }
}

TEST(FilterKernelTest, Int64CompareMatchesPredicateEval) {
  Random rng(7);
  const CompareOp ops[] = {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                           CompareOp::kLe, CompareOp::kGt, CompareOp::kGe};
  for (int round = 0; round < 100; ++round) {
    const uint32_t n = 1 + static_cast<uint32_t>(rng.Uniform(200));
    std::vector<int64_t> values(n);
    for (auto& v : values) v = static_cast<int64_t>(rng.Uniform(16)) - 8;
    const CompareOp op = ops[rng.Uniform(6)];
    const int64_t operand = static_cast<int64_t>(rng.Uniform(16)) - 8;
    const Predicate pred = Predicate::Int64Compare("c", op, operand);

    std::vector<uint64_t> words((n + 63) / 64, ~0ull);  // must be overwritten
    const uint32_t hits = vectorized::FilterInt64Compare(
        values.data(), n, op, operand, words.data());

    uint32_t expected_hits = 0;
    for (uint32_t j = 0; j < n; ++j) {
      const bool want = pred.EvalInt64(values[j]);
      expected_hits += want ? 1 : 0;
      ASSERT_EQ(((words[j / 64] >> (j % 64)) & 1) != 0, want)
          << "round=" << round << " row=" << j;
    }
    EXPECT_EQ(hits, expected_hits);
    // Tail bits past n must be cleared so bitmaps AND/fold without masking.
    if ((n % 64) != 0) {
      EXPECT_EQ(words.back() & (~0ull << (n % 64)), 0ull) << "round=" << round;
    }
  }
}

TEST(FilterKernelTest, StringEqAndMatchTokens) {
  const std::vector<std::string> values = {
      "connection timeout on 192.168.0.1", "ok",           "timeout",
      "retry after timeout budget",        "connection ok", ""};
  const uint32_t n = static_cast<uint32_t>(values.size());
  std::vector<uint64_t> words((n + 63) / 64, ~0ull);

  EXPECT_EQ(vectorized::FilterStringEq(values.data(), n, "ok", words.data()),
            1u);
  EXPECT_TRUE((words[0] >> 1) & 1);

  EXPECT_EQ(vectorized::FilterMatchTokens(values.data(), n, {"timeout"},
                                          words.data()),
            3u);
  EXPECT_EQ(words[0] & 0x3full, 0b001101ull);

  EXPECT_EQ(vectorized::FilterMatchTokens(values.data(), n,
                                          {"connection", "timeout"},
                                          words.data()),
            1u);
  EXPECT_EQ(words[0] & 0x3full, 0b000001ull);

  // Empty token list selects every row (the scalar EvalOnDecoded contract).
  EXPECT_EQ(vectorized::FilterMatchTokens(values.data(), n, {}, words.data()),
            n);
}

// --- Engine-level equality matrix ---

class VectorizedQueryTest : public ::testing::TestWithParam<int> {
 protected:
  static constexpr int64_t kHistory = 8ll * 3600 * 1'000'000;

  void SetUp() override {
    store_ = std::make_unique<objectstore::MemoryObjectStore>();
    // Small LogBlocks and column blocks so the kernels see many partial
    // tail blocks and the candidate bitmaps land at odd word offsets.
    cluster::DataBuilderOptions builder_options;
    builder_options.max_rows_per_logblock = 500;
    builder_options.block_options.rows_per_block = 128;
    cluster::DataBuilder builder(store_.get(), &map_, builder_options);
    rowstore::RowStore rows(logblock::RequestLogSchema());
    workload::LogGenerator gen(41);
    for (uint64_t tenant = 0; tenant < 3; ++tenant) {
      rows.Append(tenant, gen.Generate(tenant, 4000, 0, kHistory));
    }
    ASSERT_TRUE(builder.BuildOnce(&rows).ok());
  }

  EngineOptions Options(int threads, bool vectorized,
                        bool skipping = true) const {
    EngineOptions options;
    options.query_threads = threads;
    options.use_vectorized = vectorized;
    options.use_data_skipping = skipping;
    options.prefetch_threads = 4;
    options.io_block_size = 4096;
    options.cache_options.memory_capacity_bytes = 8 << 20;
    options.cache_options.ssd_dir.clear();
    return options;
  }

  Result<QueryResult> Run(const EngineOptions& options, const LogQuery& query) {
    auto engine = QueryEngine::Open(store_.get(), options);
    if (!engine.ok()) return engine.status();
    return (*engine)->Execute(query, map_);
  }

  // Byte-identity across execution MODES: rows, order, and every
  // deterministic stat shared by the scalar and vectorized paths —
  // including decode_cache_hits, which counts the same block reuse either
  // way. vectorized_* stats are mode-specific (zero on the scalar path)
  // and vectorized_kernel_ns is wall clock, so they stay out of this check.
  void ExpectIdentical(const QueryResult& expected, const QueryResult& actual,
                       const std::string& label) {
    EXPECT_EQ(actual.columns, expected.columns) << label;
    ASSERT_EQ(actual.rows.size(), expected.rows.size()) << label;
    for (size_t r = 0; r < expected.rows.size(); ++r) {
      EXPECT_EQ(actual.rows[r], expected.rows[r]) << label << " row " << r;
    }
    EXPECT_EQ(actual.stats.logblocks_total, expected.stats.logblocks_total)
        << label;
    EXPECT_EQ(actual.stats.logblocks_pruned, expected.stats.logblocks_pruned)
        << label;
    EXPECT_EQ(actual.stats.logblocks_sma_skipped,
              expected.stats.logblocks_sma_skipped)
        << label;
    EXPECT_EQ(actual.stats.exec.column_blocks_scanned,
              expected.stats.exec.column_blocks_scanned)
        << label;
    EXPECT_EQ(actual.stats.exec.column_blocks_skipped,
              expected.stats.exec.column_blocks_skipped)
        << label;
    EXPECT_EQ(actual.stats.exec.index_probes, expected.stats.exec.index_probes)
        << label;
    EXPECT_EQ(actual.stats.exec.rows_matched, expected.stats.exec.rows_matched)
        << label;
    EXPECT_EQ(actual.stats.exec.decode_cache_hits,
              expected.stats.exec.decode_cache_hits)
        << label;
  }

  void ExpectSameAgg(const AggResult& expected, const AggResult& actual,
                     const std::string& label) {
    EXPECT_EQ(actual.kind, expected.kind) << label;
    EXPECT_EQ(actual.rows, expected.rows) << label;
    EXPECT_EQ(actual.sum, expected.sum) << label;
    EXPECT_EQ(actual.min, expected.min) << label;
    EXPECT_EQ(actual.max, expected.max) << label;
    ASSERT_EQ(actual.groups.size(), expected.groups.size()) << label;
    for (size_t g = 0; g < expected.groups.size(); ++g) {
      EXPECT_EQ(actual.groups[g].key, expected.groups[g].key)
          << label << " group " << g;
      EXPECT_EQ(actual.groups[g].count, expected.groups[g].count)
          << label << " group " << g;
    }
  }

  std::unique_ptr<objectstore::MemoryObjectStore> store_;
  logblock::LogBlockMap map_;
};

TEST_P(VectorizedQueryTest, MatchesScalarByteForByte) {
  workload::QueryGenerator qgen(static_cast<uint64_t>(GetParam()));
  const uint64_t tenant = static_cast<uint64_t>(GetParam()) % 3;
  for (const auto& base_query : qgen.TenantQuerySet(tenant, 0, kHistory)) {
    for (bool skipping : {true, false}) {
      for (uint32_t limit : {0u, 1u, 7u, 100u}) {
        LogQuery query = base_query;
        query.limit = limit;
        // Ground truth: scalar, serial, same skipping setting (skipping
        // changes which blocks are scanned, so it must match on both sides).
        auto scalar = Run(Options(1, /*vectorized=*/false, skipping), query);
        ASSERT_TRUE(scalar.ok()) << scalar.status().ToString();
        for (int threads : {1, 8}) {
          auto vec = Run(Options(threads, /*vectorized=*/true, skipping),
                         query);
          ASSERT_TRUE(vec.ok()) << vec.status().ToString();
          ExpectIdentical(*scalar, *vec,
                          "skipping=" + std::to_string(skipping) +
                              " limit=" + std::to_string(limit) +
                              " threads=" + std::to_string(threads));
        }
      }
    }
  }
}

TEST_P(VectorizedQueryTest, VectorizedStatsDeterministicAcrossThreads) {
  // With skipping off, every residual column block goes through a kernel:
  // vectorized_rows_scanned/bitmap_hits must be nonzero, identical between
  // the serial and 8-thread schedulers, and zero on the scalar path.
  workload::QueryGenerator qgen(static_cast<uint64_t>(GetParam()));
  const uint64_t tenant = static_cast<uint64_t>(GetParam()) % 3;
  for (auto query : qgen.TenantQuerySet(tenant, 0, kHistory)) {
    if (query.predicates.empty()) continue;  // nothing reaches a kernel
    query.limit = 0;
    auto serial = Run(Options(1, true, /*skipping=*/false), query);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    EXPECT_GT(serial->stats.exec.vectorized_rows_scanned, 0u);

    auto parallel = Run(Options(8, true, /*skipping=*/false), query);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    EXPECT_EQ(parallel->stats.exec.vectorized_rows_scanned,
              serial->stats.exec.vectorized_rows_scanned);
    EXPECT_EQ(parallel->stats.exec.vectorized_bitmap_hits,
              serial->stats.exec.vectorized_bitmap_hits);

    auto scalar = Run(Options(1, false, /*skipping=*/false), query);
    ASSERT_TRUE(scalar.ok());
    EXPECT_EQ(scalar->stats.exec.vectorized_rows_scanned, 0u);
    EXPECT_EQ(scalar->stats.exec.vectorized_bitmap_hits, 0u);
  }
}

TEST_F(VectorizedQueryTest, DecodeCacheServesGatherAndRepeatPredicates) {
  // The gather re-touches the column the residual scan just decoded: the
  // per-execution cache must serve it without a second decode.
  LogQuery query;
  query.tenant_id = 1;
  query.ts_min = 0;
  query.ts_max = kHistory;
  query.predicates.push_back(Predicate::Match("log", "timeout"));
  query.select_columns = {"log"};
  auto result = Run(Options(1, true), query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GT(result->rows.size(), 0u);
  EXPECT_GT(result->stats.exec.decode_cache_hits, 0u);

  // Two predicates on one column: the second predicate's scan reuses the
  // first's decodes (skipping off so both scan every block).
  LogQuery two;
  two.tenant_id = 1;
  two.ts_min = 0;
  two.ts_max = kHistory;
  two.predicates.push_back(
      Predicate::Int64Compare("latency", CompareOp::kGe, 100));
  two.predicates.push_back(
      Predicate::Int64Compare("latency", CompareOp::kLt, 100'000));
  two.select_columns = {"ts"};
  auto repeat = Run(Options(1, true, /*skipping=*/false), two);
  ASSERT_TRUE(repeat.ok()) << repeat.status().ToString();
  EXPECT_GT(repeat->stats.exec.decode_cache_hits, 0u);

  // Scalar mode shares the cache and must report the SAME hit count.
  auto scalar = Run(Options(1, false, /*skipping=*/false), two);
  ASSERT_TRUE(scalar.ok());
  EXPECT_EQ(scalar->stats.exec.decode_cache_hits,
            repeat->stats.exec.decode_cache_hits);
}

TEST_P(VectorizedQueryTest, AggregationPushdownMatchesBrokerHelpers) {
  // Ground truth: the broker-side helpers (RollupInt64 / GroupCountTopK)
  // applied to the FULL no-limit row result of the same filtered query.
  workload::QueryGenerator qgen(static_cast<uint64_t>(GetParam()));
  const uint64_t tenant = static_cast<uint64_t>(GetParam()) % 3;
  int queries_with_rows = 0;
  for (const auto& base_query : qgen.TenantQuerySet(tenant, 0, kHistory)) {
    LogQuery rows_query = base_query;
    rows_query.limit = 0;
    rows_query.select_columns = {"latency", "ip"};
    auto rows = Run(Options(1, false), rows_query);
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    if (!rows->rows.empty()) ++queries_with_rows;
    const auto latencies = QueryEngine::Column(*rows, "latency");
    const auto ips = QueryEngine::Column(*rows, "ip");
    const Int64Rollup rollup = RollupInt64(latencies);
    const auto all_groups = GroupCountTopK(ips, ips.size() + 1);

    const Aggregate kinds[] = {Aggregate::Count(), Aggregate::Sum("latency"),
                               Aggregate::Min("latency"),
                               Aggregate::Max("latency"),
                               Aggregate::GroupCount("ip")};
    for (const Aggregate& agg : kinds) {
      LogQuery query = base_query;
      query.limit = 0;
      query.select_columns.clear();
      query.agg = agg;

      auto ground = Run(Options(1, false), query);
      ASSERT_TRUE(ground.ok()) << ground.status().ToString();
      // Aggregates ship summaries, never rows.
      EXPECT_TRUE(ground->rows.empty());
      EXPECT_EQ(ground->agg.rows, rollup.count);
      EXPECT_EQ(ground->stats.exec.rows_matched, rollup.count);
      switch (agg.kind) {
        case Aggregate::Kind::kSum:
          EXPECT_EQ(ground->agg.sum, rollup.sum);
          break;
        case Aggregate::Kind::kMin:
          if (rollup.count > 0) {
            EXPECT_EQ(ground->agg.min, rollup.min);
          }
          break;
        case Aggregate::Kind::kMax:
          if (rollup.count > 0) {
            EXPECT_EQ(ground->agg.max, rollup.max);
          }
          break;
        case Aggregate::Kind::kGroupCount: {
          const auto topk = ground->agg.TopK(0);
          ASSERT_EQ(topk.size(), all_groups.size());
          for (size_t g = 0; g < topk.size(); ++g) {
            EXPECT_EQ(topk[g].key, all_groups[g].key) << "group " << g;
            EXPECT_EQ(topk[g].count, all_groups[g].count) << "group " << g;
          }
          break;
        }
        default:
          break;
      }

      // The pushdown must be invisible across modes, schedulers, skipping.
      for (bool skipping : {true, false}) {
        auto skip_ground = Run(Options(1, false, skipping), query);
        ASSERT_TRUE(skip_ground.ok()) << skip_ground.status().ToString();
        for (int threads : {1, 8}) {
          for (bool vectorized : {true, false}) {
            auto run = Run(Options(threads, vectorized, skipping), query);
            ASSERT_TRUE(run.ok()) << run.status().ToString();
            EXPECT_TRUE(run->rows.empty());
            ExpectSameAgg(skip_ground->agg, run->agg,
                          "threads=" + std::to_string(threads) +
                              " vectorized=" + std::to_string(vectorized) +
                              " skipping=" + std::to_string(skipping));
            EXPECT_EQ(run->stats.exec.rows_matched,
                      skip_ground->stats.exec.rows_matched);
          }
        }
      }
    }
  }
  EXPECT_GT(queries_with_rows, 0);
}

TEST_F(VectorizedQueryTest, LimitNeverCutsAnAggregateScan) {
  // `limit` on an aggregate is presentation-only: the scan covers ALL
  // matching rows, and for kGroupCount the limit is the TopK cut.
  LogQuery query;
  query.tenant_id = 0;
  query.ts_min = 0;
  query.ts_max = kHistory;
  query.predicates.push_back(Predicate::StringEq("fail", "false"));
  query.agg = Aggregate::GroupCount("ip");

  auto unlimited = Run(Options(8, true), query);
  ASSERT_TRUE(unlimited.ok()) << unlimited.status().ToString();
  ASSERT_GT(unlimited->agg.rows, 7u) << "dataset too small for the test";

  query.limit = 7;
  auto limited = Run(Options(8, true), query);
  ASSERT_TRUE(limited.ok()) << limited.status().ToString();
  // Same full aggregate (canonical groups included) despite the limit...
  EXPECT_EQ(limited->agg.rows, unlimited->agg.rows);
  ASSERT_EQ(limited->agg.groups.size(), unlimited->agg.groups.size());
  EXPECT_EQ(limited->stats.exec.rows_matched,
            unlimited->stats.exec.rows_matched);
  // ...with the limit applied only by the presentation TopK.
  const auto top = limited->agg.TopK(query.limit);
  ASSERT_LE(top.size(), 7u);
  const auto full = unlimited->agg.TopK(0);
  for (size_t g = 0; g < top.size(); ++g) {
    EXPECT_EQ(top[g].key, full[g].key) << "group " << g;
    EXPECT_EQ(top[g].count, full[g].count) << "group " << g;
  }

  // kCount with a limit: same row count as the unlimited row query.
  LogQuery count_query = query;
  count_query.limit = 1;
  count_query.agg = Aggregate::Count();
  auto counted = Run(Options(8, true), count_query);
  ASSERT_TRUE(counted.ok());
  EXPECT_EQ(counted->agg.rows, unlimited->agg.rows);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VectorizedQueryTest, ::testing::Range(1, 4));

}  // namespace
}  // namespace logstore::query
