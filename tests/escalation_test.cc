// Pure-unit coverage for the escalation ladder's decision logic: a
// WorkerHealth report goes in, a recover/failover/wait/skip decision comes
// out. No cluster, no raft, no disk — DecideEscalation is a pure function
// precisely so these edges can be pinned down exhaustively.

#include "cluster/escalation.h"

#include <gtest/gtest.h>

namespace logstore::cluster {
namespace {

// A healthy 3-replica worker report; tests break specific parts of it.
WorkerHealth ReplicatedHealth() {
  WorkerHealth health;
  health.worker_id = 7;
  health.process_alive = true;
  health.replicated = true;
  health.num_replicas = 3;
  health.connected_replicas = 3;
  health.wedged_replicas = 0;
  health.has_leader = true;
  for (int node = 0; node < 3; ++node) {
    WorkerHealth::Replica replica;
    replica.node = node;
    replica.connected = true;
    replica.leader = node == 0;
    health.replicas.push_back(replica);
  }
  return health;
}

void Wedge(WorkerHealth* health, int node) {
  health->replicas[node].wedged = true;
  ++health->wedged_replicas;
}

void Partition(WorkerHealth* health, int node) {
  health->replicas[node].connected = false;
  health->replicas[node].leader = false;
  --health->connected_replicas;
}

TEST(EscalationTest, HealthyWorkerNeedsNothing) {
  const auto decision = DecideEscalation(ReplicatedHealth(), {}, 3, 0);
  EXPECT_EQ(decision.action, EscalationAction::kHealthy);
}

TEST(EscalationTest, DeadProcessGoesStraightToFailover) {
  WorkerHealth health = ReplicatedHealth();
  health.process_alive = false;
  const auto decision = DecideEscalation(health, {}, 3, 0);
  EXPECT_EQ(decision.action, EscalationAction::kFailover);
}

TEST(EscalationTest, BrokenWalGoesStraightToFailover) {
  WorkerHealth health = ReplicatedHealth();
  health.wal_ok = false;
  const auto decision = DecideEscalation(health, {}, 3, 0);
  EXPECT_EQ(decision.action, EscalationAction::kFailover);
}

// --- The replica rung ---

TEST(EscalationTest, SingleWedgedReplicaWithMajorityRecoversInPlace) {
  WorkerHealth health = ReplicatedHealth();
  Wedge(&health, 1);
  const auto decision = DecideEscalation(health, {}, 3, 0);
  EXPECT_EQ(decision.action, EscalationAction::kRecoverReplica);
  EXPECT_EQ(decision.replica, 1);
}

TEST(EscalationTest, SingleDisconnectedReplicaWithMajorityRecoversInPlace) {
  WorkerHealth health = ReplicatedHealth();
  Partition(&health, 2);
  const auto decision = DecideEscalation(health, {}, 3, 0);
  EXPECT_EQ(decision.action, EscalationAction::kRecoverReplica);
  EXPECT_EQ(decision.replica, 2);
}

TEST(EscalationTest, WedgedLeaderIsRecoveredInPlace) {
  // The leader itself is the wedged member: recovering it drops its
  // leadership and the healthy majority re-elects — still the cheap rung,
  // never a whole-worker failover.
  WorkerHealth health = ReplicatedHealth();
  Wedge(&health, 0);
  const auto decision = DecideEscalation(health, {}, 3, 0);
  EXPECT_EQ(decision.action, EscalationAction::kRecoverReplica);
  EXPECT_EQ(decision.replica, 0);
}

TEST(EscalationTest, WedgedReplicaPreferredOverDisconnectedOne) {
  // Both kinds of casualty, healthy member still a majority of... no:
  // one wedged + one disconnected leaves 1/3 healthy — below majority.
  // Use 5 replicas so 3 healthy remain: the wedged one must be chosen,
  // because a wedged CONNECTED member fails every group commit while a
  // disconnected one only costs redundancy.
  WorkerHealth health = ReplicatedHealth();
  health.num_replicas = 5;
  health.connected_replicas = 5;
  for (int node = 3; node < 5; ++node) {
    WorkerHealth::Replica replica;
    replica.node = node;
    replica.connected = true;
    health.replicas.push_back(replica);
  }
  Partition(&health, 1);  // listed first...
  Wedge(&health, 4);      // ...but the wedged member wins
  const auto decision = DecideEscalation(health, {}, 3, 0);
  EXPECT_EQ(decision.action, EscalationAction::kRecoverReplica);
  EXPECT_EQ(decision.replica, 4);
}

// --- Majority edges ---

TEST(EscalationTest, TwoCasualtiesOfThreeIsBelowMajorityAndFailsOver) {
  WorkerHealth health = ReplicatedHealth();
  Wedge(&health, 1);
  Partition(&health, 2);
  const auto decision = DecideEscalation(health, {}, 3, 0);
  EXPECT_EQ(decision.action, EscalationAction::kFailover);
}

TEST(EscalationTest, ExactMajorityIsEnoughForInPlaceRecovery) {
  // 2/3 healthy is exactly the majority: the boundary must land on the
  // cheap rung, not failover.
  WorkerHealth health = ReplicatedHealth();
  Partition(&health, 1);
  const auto decision = DecideEscalation(health, {}, 3, 0);
  EXPECT_EQ(decision.action, EscalationAction::kRecoverReplica);
}

// --- Repeated offenders ---

TEST(EscalationTest, RepeatedOffenderEscalatesToFailover) {
  WorkerHealth health = ReplicatedHealth();
  Wedge(&health, 1);
  EscalationPolicy policy;
  policy.max_recover_attempts = 3;
  // Below budget: keep repairing.
  auto decision = DecideEscalation(health, {{1, 2}}, 3, 0, policy);
  EXPECT_EQ(decision.action, EscalationAction::kRecoverReplica);
  // Budget exhausted: escalate.
  decision = DecideEscalation(health, {{1, 3}}, 3, 0, policy);
  EXPECT_EQ(decision.action, EscalationAction::kFailover);
}

TEST(EscalationTest, AttemptMemoryIsPerReplica) {
  // Replica 1 exhausted its budget, but the CURRENT casualty is replica 2:
  // the stale memory of a different replica must not trigger failover.
  WorkerHealth health = ReplicatedHealth();
  Partition(&health, 2);
  EscalationPolicy policy;
  policy.max_recover_attempts = 3;
  const auto decision = DecideEscalation(health, {{1, 3}}, 3, 0, policy);
  EXPECT_EQ(decision.action, EscalationAction::kRecoverReplica);
  EXPECT_EQ(decision.replica, 2);
}

// --- Elections ---

TEST(EscalationTest, QuorateButLeaderlessWaitsOutTheElection) {
  WorkerHealth health = ReplicatedHealth();
  health.has_leader = false;
  health.replicas[0].leader = false;
  const auto decision = DecideEscalation(health, {}, 3, 0);
  EXPECT_EQ(decision.action, EscalationAction::kWaitElection);
}

TEST(EscalationTest, ElectionThatNeverConvergesEscalates) {
  WorkerHealth health = ReplicatedHealth();
  health.has_leader = false;
  health.replicas[0].leader = false;
  EscalationPolicy policy;
  policy.max_election_waits = 8;
  auto decision = DecideEscalation(health, {}, 3, 7, policy);
  EXPECT_EQ(decision.action, EscalationAction::kWaitElection);
  decision = DecideEscalation(health, {}, 3, 8, policy);
  EXPECT_EQ(decision.action, EscalationAction::kFailover);
}

// --- The last-live-worker floor ---

TEST(EscalationTest, LastLiveWorkerSkipsInsteadOfFailingOver) {
  WorkerHealth health = ReplicatedHealth();
  health.process_alive = false;
  const auto decision = DecideEscalation(health, {}, 1, 0);
  EXPECT_EQ(decision.action, EscalationAction::kSkip);
}

TEST(EscalationTest, LastLiveWorkerStillGetsReplicaLevelRepair) {
  // The skip floor only replaces FAILOVER — the cheap rung still applies,
  // because in-place repair needs no survivor.
  WorkerHealth health = ReplicatedHealth();
  Wedge(&health, 1);
  const auto decision = DecideEscalation(health, {}, 1, 0);
  EXPECT_EQ(decision.action, EscalationAction::kRecoverReplica);
  EXPECT_EQ(decision.replica, 1);
}

TEST(EscalationTest, LastLiveRepeatedOffenderSkips) {
  WorkerHealth health = ReplicatedHealth();
  Wedge(&health, 1);
  EscalationPolicy policy;
  policy.max_recover_attempts = 2;
  const auto decision = DecideEscalation(health, {{1, 2}}, 1, 0, policy);
  EXPECT_EQ(decision.action, EscalationAction::kSkip);
}

}  // namespace
}  // namespace logstore::cluster
