// Scatter/gather read-path property tests: fanning a cluster query across
// the workers owning its LogBlocks must be invisible — byte-identical rows
// (content AND order) and stats to the single-broker-engine path — across
// a seeded (limit x threads x placement) matrix, with realtime rows merged
// in a deterministic placement-independent order, under a small shared
// admission budget.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "common/clock.h"
#include "objectstore/fault_injecting_object_store.h"
#include "objectstore/memory_object_store.h"
#include "query/aggregation.h"
#include "query/engine.h"
#include "workload/loggen.h"
#include "workload/querygen.h"

namespace logstore::cluster {
namespace {

class ScatterQueryTest : public ::testing::TestWithParam<int> {
 protected:
  static constexpr int64_t kHistory = 2ll * 3600 * 1'000'000;

  struct Deployment {
    std::unique_ptr<objectstore::MemoryObjectStore> store;
    std::unique_ptr<Cluster> cluster;
  };

  // A 4-worker deployment with small LogBlocks (every tenant spans many
  // blocks across many shards, so the scatter has real fan-out), seeded
  // archived data, and a tail of realtime rows left un-archived.
  Deployment OpenDeployment(int query_threads, int admission_slots,
                            bool with_realtime_tail = true) {
    Deployment deployment;
    deployment.store = std::make_unique<objectstore::MemoryObjectStore>();
    ClusterDeploymentOptions options;
    options.num_workers = 4;
    options.shards_per_worker = 2;
    options.worker.schema = logblock::RequestLogSchema();
    options.worker.builder.max_rows_per_logblock = 300;
    options.worker.builder.block_options.rows_per_block = 128;
    options.engine.query_threads = query_threads;
    options.engine.prefetch_threads = 2;
    options.engine.io_block_size = 4096;
    options.engine.cache_options.memory_capacity_bytes = 4 << 20;
    options.engine.cache_options.ssd_dir.clear();
    options.admission_slots = admission_slots;
    auto cluster = Cluster::Open(deployment.store.get(), options);
    EXPECT_TRUE(cluster.ok()) << cluster.status().ToString();
    deployment.cluster = std::move(cluster).value();

    workload::LogGenerator gen(90 + static_cast<uint64_t>(GetParam()));
    for (uint64_t tenant = 0; tenant < 3; ++tenant) {
      // Many small writes spread rows across the workers' shards.
      for (int i = 0; i < 12; ++i) {
        EXPECT_TRUE(deployment.cluster
                        ->Write(tenant, gen.Generate(tenant, 200, 0, kHistory))
                        .ok());
      }
    }
    auto built = deployment.cluster->RunBuildPass();
    EXPECT_TRUE(built.ok()) << built.status().ToString();
    EXPECT_GT(*built, 0);
    if (with_realtime_tail) {
      for (uint64_t tenant = 0; tenant < 3; ++tenant) {
        for (int i = 0; i < 6; ++i) {
          EXPECT_TRUE(
              deployment.cluster
                  ->Write(tenant, gen.Generate(tenant, 25, 0, kHistory))
                  .ok());
        }
      }
    }
    return deployment;
  }

  // Full byte-identity: columns, row contents, row ORDER, and every stat
  // the scatter merge must reproduce (elapsed_us excepted — wall clock).
  void ExpectIdentical(const query::QueryResult& expected,
                       const query::QueryResult& actual,
                       const std::string& label) {
    EXPECT_EQ(actual.columns, expected.columns) << label;
    ASSERT_EQ(actual.rows.size(), expected.rows.size()) << label;
    for (size_t r = 0; r < expected.rows.size(); ++r) {
      EXPECT_EQ(actual.rows[r], expected.rows[r]) << label << " row " << r;
    }
    EXPECT_EQ(actual.stats.logblocks_total, expected.stats.logblocks_total)
        << label;
    EXPECT_EQ(actual.stats.logblocks_pruned, expected.stats.logblocks_pruned)
        << label;
    EXPECT_EQ(actual.stats.logblocks_sma_skipped,
              expected.stats.logblocks_sma_skipped)
        << label;
    EXPECT_EQ(actual.stats.realtime_rows, expected.stats.realtime_rows)
        << label;
    EXPECT_EQ(actual.stats.exec.column_blocks_scanned,
              expected.stats.exec.column_blocks_scanned)
        << label;
    EXPECT_EQ(actual.stats.exec.column_blocks_skipped,
              expected.stats.exec.column_blocks_skipped)
        << label;
    EXPECT_EQ(actual.stats.exec.index_probes, expected.stats.exec.index_probes)
        << label;
    EXPECT_EQ(actual.stats.exec.rows_matched, expected.stats.exec.rows_matched)
        << label;
  }

  void CompareMatrix(Cluster* cluster, const std::string& phase) {
    workload::QueryGenerator qgen(static_cast<uint64_t>(GetParam()));
    const uint64_t tenant = static_cast<uint64_t>(GetParam()) % 3;
    for (const auto& base_query : qgen.TenantQuerySet(tenant, 0, kHistory)) {
      for (uint32_t limit : {0u, 1u, 7u, 100u}) {
        query::LogQuery query = base_query;
        query.limit = limit;
        auto single = cluster->QuerySingleEngine(query);
        ASSERT_TRUE(single.ok()) << single.status().ToString();
        auto scattered = cluster->Query(query);
        ASSERT_TRUE(scattered.ok()) << scattered.status().ToString();
        ExpectIdentical(*single, *scattered,
                        phase + " limit=" + std::to_string(limit));
      }
    }
  }
};

TEST_P(ScatterQueryTest, MatchesSingleEngineByteForByte) {
  for (int threads : {1, 4, 8}) {
    auto deployment = OpenDeployment(threads, /*admission_slots=*/3);
    CompareMatrix(deployment.cluster.get(),
                  "threads=" + std::to_string(threads));
    // The shared budget actually gated these scans.
    const auto stats = deployment.cluster->admission()->TenantStats(
        static_cast<uint64_t>(GetParam()) % 3);
    EXPECT_GT(stats.grants, 0u) << "threads=" << threads;
  }
}

TEST_P(ScatterQueryTest, AggregationPushdownMatchesSingleEngineAndBroker) {
  // Aggregates ship per-fragment partial AggResults below the scatter merge
  // (§15): the combined aggregate must equal the single-broker-engine path
  // AND a broker-side aggregation over the full no-limit row result — with
  // the realtime tail folded in on both paths.
  auto deployment = OpenDeployment(4, /*admission_slots=*/3);
  Cluster* cluster = deployment.cluster.get();

  workload::QueryGenerator qgen(static_cast<uint64_t>(GetParam()));
  const uint64_t tenant = static_cast<uint64_t>(GetParam()) % 3;
  auto expect_same_agg = [](const query::AggResult& expected,
                            const query::AggResult& actual,
                            const std::string& label) {
    EXPECT_EQ(actual.kind, expected.kind) << label;
    EXPECT_EQ(actual.rows, expected.rows) << label;
    EXPECT_EQ(actual.sum, expected.sum) << label;
    EXPECT_EQ(actual.min, expected.min) << label;
    EXPECT_EQ(actual.max, expected.max) << label;
    ASSERT_EQ(actual.groups.size(), expected.groups.size()) << label;
    for (size_t g = 0; g < expected.groups.size(); ++g) {
      EXPECT_EQ(actual.groups[g].key, expected.groups[g].key) << label;
      EXPECT_EQ(actual.groups[g].count, expected.groups[g].count) << label;
    }
  };

  for (const auto& base_query : qgen.TenantQuerySet(tenant, 0, kHistory)) {
    // Broker ground truth: aggregate the FULL row result of the same
    // filtered query (realtime tail included) with the broker helpers.
    query::LogQuery rows_query = base_query;
    rows_query.limit = 0;
    rows_query.select_columns = {"latency", "ip"};
    auto rows = cluster->QuerySingleEngine(rows_query);
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    const auto latencies = query::QueryEngine::Column(*rows, "latency");
    const auto ips = query::QueryEngine::Column(*rows, "ip");
    const query::Int64Rollup rollup = query::RollupInt64(latencies);
    const auto all_groups = query::GroupCountTopK(ips, ips.size() + 1);

    const query::Aggregate kinds[] = {
        query::Aggregate::Count(), query::Aggregate::Sum("latency"),
        query::Aggregate::Min("latency"), query::Aggregate::Max("latency"),
        query::Aggregate::GroupCount("ip")};
    for (const query::Aggregate& agg : kinds) {
      query::LogQuery query = base_query;
      query.limit = 0;
      query.select_columns.clear();
      query.agg = agg;
      auto single = cluster->QuerySingleEngine(query);
      ASSERT_TRUE(single.ok()) << single.status().ToString();
      auto scattered = cluster->Query(query);
      ASSERT_TRUE(scattered.ok()) << scattered.status().ToString();
      EXPECT_TRUE(scattered->rows.empty());  // summaries, never rows
      const std::string label = "agg kind=" +
                                std::to_string(static_cast<int>(agg.kind));
      expect_same_agg(single->agg, scattered->agg, label + " (vs single)");
      EXPECT_EQ(scattered->stats.exec.rows_matched,
                single->stats.exec.rows_matched)
          << label;
      EXPECT_EQ(scattered->stats.realtime_rows, single->stats.realtime_rows)
          << label;

      EXPECT_EQ(scattered->agg.rows, rollup.count) << label;
      switch (agg.kind) {
        case query::Aggregate::Kind::kSum:
          EXPECT_EQ(scattered->agg.sum, rollup.sum) << label;
          break;
        case query::Aggregate::Kind::kMin:
          if (rollup.count > 0) {
            EXPECT_EQ(scattered->agg.min, rollup.min) << label;
          }
          break;
        case query::Aggregate::Kind::kMax:
          if (rollup.count > 0) {
            EXPECT_EQ(scattered->agg.max, rollup.max) << label;
          }
          break;
        case query::Aggregate::Kind::kGroupCount: {
          const auto topk = scattered->agg.TopK(0);
          ASSERT_EQ(topk.size(), all_groups.size()) << label;
          for (size_t g = 0; g < topk.size(); ++g) {
            EXPECT_EQ(topk[g].key, all_groups[g].key) << label;
            EXPECT_EQ(topk[g].count, all_groups[g].count) << label;
          }
          break;
        }
        default:
          break;
      }

      // A limit on an aggregate is presentation-only: the scatter must not
      // arm the limit tracker or cut any fragment's scan.
      query.limit = 5;
      auto limited = cluster->Query(query);
      ASSERT_TRUE(limited.ok()) << limited.status().ToString();
      expect_same_agg(scattered->agg, limited->agg, label + " (limit=5)");
    }
  }
}

TEST_P(ScatterQueryTest, MatchesAcrossPlacementChanges) {
  // Placement axis of the matrix: results must not depend on which worker
  // owns which shard. All rows are archived first (realtime is lost on
  // non-durable failover, which would change the data, not just the
  // placement), then the same query matrix runs against three different
  // placements: initial, after a failover, after a second failover plus a
  // rejoin — with the archived row bytes pinned against the initial run.
  auto deployment = OpenDeployment(4, /*admission_slots=*/4,
                                   /*with_realtime_tail=*/false);
  Cluster* cluster = deployment.cluster.get();

  workload::QueryGenerator qgen(static_cast<uint64_t>(GetParam()));
  const uint64_t tenant = static_cast<uint64_t>(GetParam()) % 3;
  struct Pinned {
    query::LogQuery query;
    query::QueryResult result;
  };
  std::vector<Pinned> pinned;
  for (const auto& base_query : qgen.TenantQuerySet(tenant, 0, kHistory)) {
    for (uint32_t limit : {0u, 1u, 7u, 100u}) {
      query::LogQuery query = base_query;
      query.limit = limit;
      auto result = cluster->Query(query);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      pinned.push_back({query, std::move(result).value()});
    }
  }

  auto reverify = [&](const std::string& phase) {
    for (const Pinned& expected : pinned) {
      auto single = cluster->QuerySingleEngine(expected.query);
      ASSERT_TRUE(single.ok()) << phase << ": " << single.status().ToString();
      auto scattered = cluster->Query(expected.query);
      ASSERT_TRUE(scattered.ok())
          << phase << ": " << scattered.status().ToString();
      ExpectIdentical(expected.result, *scattered, phase + " (vs pinned)");
      ExpectIdentical(*single, *scattered, phase + " (vs single)");
    }
  };

  ASSERT_TRUE(cluster->KillWorker(1).ok());
  auto cycle = cluster->RunControlCycle();
  ASSERT_TRUE(cycle.ok()) << cycle.status().ToString();
  ASSERT_EQ(cycle->failovers.size(), 1u);
  reverify("after failover of worker 1");

  ASSERT_TRUE(cluster->KillWorker(2).ok());
  auto second = cluster->RunControlCycle();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  reverify("after failover of worker 2");

  ASSERT_TRUE(cluster->RestartWorker(1).ok());  // rejoins empty
  reverify("after rejoin of worker 1");
}

TEST_P(ScatterQueryTest, DeadOwnerIsRetryableNotPartial) {
  auto deployment = OpenDeployment(4, /*admission_slots=*/4);
  Cluster* cluster = deployment.cluster.get();
  query::LogQuery query;
  query.tenant_id = static_cast<uint64_t>(GetParam()) % 3;
  query.ts_min = 0;
  query.ts_max = kHistory;
  auto before = cluster->Query(query);
  ASSERT_TRUE(before.ok());

  // Between a kill and the control cycle, the dead worker still owns its
  // shards: both read paths must refuse (retryable), never return a subset.
  ASSERT_TRUE(cluster->KillWorker(0).ok());
  auto scattered = cluster->Query(query);
  ASSERT_FALSE(scattered.ok());
  EXPECT_TRUE(scattered.status().IsUnavailable())
      << scattered.status().ToString();
  auto single = cluster->QuerySingleEngine(query);
  ASSERT_FALSE(single.ok());
  EXPECT_TRUE(single.status().IsUnavailable()) << single.status().ToString();

  // After the control cycle reassigns the shards, the read succeeds again
  // and still matches the single-engine path (realtime rows of worker 0
  // were lost with its non-durable store; both paths see the same world).
  auto cycle = cluster->RunControlCycle();
  ASSERT_TRUE(cycle.ok()) << cycle.status().ToString();
  auto after_scatter = cluster->Query(query);
  ASSERT_TRUE(after_scatter.ok()) << after_scatter.status().ToString();
  auto after_single = cluster->QuerySingleEngine(query);
  ASSERT_TRUE(after_single.ok()) << after_single.status().ToString();
  ExpectIdentical(*after_single, *after_scatter, "after control cycle");
}

TEST(ScatterBrownoutTest, BrownoutIsRetryableNotPartial) {
  constexpr int64_t kScatterHistory = 2ll * 3600 * 1'000'000;
  // Scatter reads during an object-store brownout (§13): every worker
  // engine that needs a LogBlock fetch fails, and the broker must surface
  // ONE retryable kUnavailable — never merge the workers that happened to
  // succeed into a subset result. With the brownout cleared, the same
  // query must come back byte-identical to its pre-brownout answer.
  auto base_store = std::make_unique<objectstore::MemoryObjectStore>();
  objectstore::FaultInjectionOptions fault;
  fault.seed = 99;
  objectstore::FaultInjectingObjectStore store(base_store.get(), fault);

  ClusterDeploymentOptions options;
  options.num_workers = 4;
  options.shards_per_worker = 2;
  options.worker.schema = logblock::RequestLogSchema();
  options.worker.builder.max_rows_per_logblock = 300;
  options.engine.cache_options.memory_capacity_bytes = 4 << 20;
  options.engine.cache_options.ssd_dir.clear();
  // Short read-retry budget: a brownout outlasting the call deadline must
  // surface instead of being retried through.
  options.engine.retry_options.max_attempts = 2;
  options.engine.retry_options.initial_backoff_us = 5'000;
  options.engine.retry_options.max_backoff_us = 20'000;
  options.engine.retry_options.call_deadline_us = 100'000;
  auto opened = Cluster::Open(&store, options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<Cluster> cluster = std::move(opened).value();

  workload::LogGenerator gen(99);
  for (uint64_t tenant = 0; tenant < 3; ++tenant) {
    for (int i = 0; i < 12; ++i) {
      ASSERT_TRUE(
          cluster->Write(tenant, gen.Generate(tenant, 200, 0, kScatterHistory))
              .ok());
    }
  }
  auto built = cluster->RunBuildPass();
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ASSERT_GT(*built, 0);

  query::LogQuery query;
  query.tenant_id = 1;
  query.ts_min = 0;
  query.ts_max = kScatterHistory;
  auto expected = cluster->Query(query);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  ASSERT_GT(expected->rows.size(), 0u);

  // Brownout with no scheduled end (cleared explicitly below): cold caches
  // force every worker engine to the store.
  const int64_t now_us = SystemClock::Default()->NowMicros();
  store.SetBrownout(now_us, now_us + 3'600'000'000LL);
  cluster->ClearQueryCaches();

  auto scattered = cluster->Query(query);
  ASSERT_FALSE(scattered.ok()) << "brownout-crossing scatter read returned "
                               << scattered->rows.size() << " rows";
  EXPECT_TRUE(scattered.status().IsUnavailable())
      << scattered.status().ToString();
  auto single = cluster->QuerySingleEngine(query);
  ASSERT_FALSE(single.ok());
  EXPECT_TRUE(single.status().IsUnavailable()) << single.status().ToString();
  EXPECT_GT(store.fault_stats().brownout_rejections.load(), 0u);

  // Brownout lifts: byte-identical to the pre-brownout answer on both
  // paths — the refusals above were purely retryable.
  store.SetBrownout(0, 0);
  auto after = cluster->Query(query);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->columns, expected->columns);
  ASSERT_EQ(after->rows.size(), expected->rows.size());
  for (size_t r = 0; r < expected->rows.size(); ++r) {
    EXPECT_EQ(after->rows[r], expected->rows[r]) << "row " << r;
  }
  auto after_single = cluster->QuerySingleEngine(query);
  ASSERT_TRUE(after_single.ok()) << after_single.status().ToString();
  ASSERT_EQ(after_single->rows.size(), expected->rows.size());
}

TEST(RealtimeMergeTest, OrderIsPlacementIndependentAndAccounted) {
  workload::LogGenerator gen(7);
  logblock::RowBatch a = gen.Generate(1, 40, 0, 1'000'000);
  logblock::RowBatch b = gen.Generate(1, 40, 0, 1'000'000);

  query::LogQuery query;
  query.tenant_id = 1;
  query.ts_min = 0;
  query.ts_max = 1'000'000;

  // The same rows distributed across workers (1,2) and across workers
  // (2,1): identical merged bytes — the order contract is placement-
  // independent.
  query::QueryResult forward;
  ASSERT_TRUE(query::MergeRealtimeRows({{1, a}, {2, b}}, query, &forward).ok());
  query::QueryResult reversed;
  ASSERT_TRUE(query::MergeRealtimeRows({{1, b}, {2, a}}, query, &reversed).ok());
  EXPECT_EQ(forward.columns, reversed.columns);
  ASSERT_EQ(forward.rows.size(), reversed.rows.size());
  EXPECT_EQ(forward.rows, reversed.rows);

  // Realtime rows are accounted, not undercounted: both counters cover
  // every appended row.
  EXPECT_EQ(forward.stats.realtime_rows, 80u);
  EXPECT_EQ(forward.stats.exec.rows_matched, 80u);
  EXPECT_EQ(forward.rows.size(), 80u);

  // Timestamps ascend (the leading sort key), so the realtime section has
  // one defined order regardless of arrival.
  const int ts_col = 1;  // RequestLogSchema: tenant_id, ts, ...
  ASSERT_EQ(forward.columns[ts_col], "ts");
  for (size_t r = 1; r < forward.rows.size(); ++r) {
    EXPECT_LE(forward.rows[r - 1][ts_col].i, forward.rows[r][ts_col].i);
  }

  // The limit trims AFTER the deterministic merge: the first `limit` rows
  // of the merged order, not whichever batch was appended first.
  query::LogQuery limited = query;
  limited.limit = 10;
  query::QueryResult trimmed;
  ASSERT_TRUE(
      query::MergeRealtimeRows({{2, b}, {1, a}}, limited, &trimmed).ok());
  ASSERT_EQ(trimmed.rows.size(), 10u);
  EXPECT_EQ(trimmed.stats.realtime_rows, 10u);
  for (size_t r = 0; r < trimmed.rows.size(); ++r) {
    EXPECT_EQ(trimmed.rows[r], forward.rows[r]) << "row " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScatterQueryTest, ::testing::Range(1, 4));

}  // namespace
}  // namespace logstore::cluster
