file(REMOVE_RECURSE
  "CMakeFiles/logblock_test.dir/logblock_test.cc.o"
  "CMakeFiles/logblock_test.dir/logblock_test.cc.o.d"
  "logblock_test"
  "logblock_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logblock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
