# Empty dependencies file for logblock_test.
# This may be replaced when dependencies are built.
