file(REMOVE_RECURSE
  "CMakeFiles/bench_io_ablation.dir/bench_io_ablation.cc.o"
  "CMakeFiles/bench_io_ablation.dir/bench_io_ablation.cc.o.d"
  "bench_io_ablation"
  "bench_io_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_io_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
