# Empty dependencies file for bench_io_ablation.
# This may be replaced when dependencies are built.
