file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_traffic_control.dir/bench_fig12_traffic_control.cc.o"
  "CMakeFiles/bench_fig12_traffic_control.dir/bench_fig12_traffic_control.cc.o.d"
  "bench_fig12_traffic_control"
  "bench_fig12_traffic_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_traffic_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
