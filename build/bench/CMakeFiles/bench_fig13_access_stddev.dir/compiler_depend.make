# Empty compiler generated dependencies file for bench_fig13_access_stddev.
# This may be replaced when dependencies are built.
