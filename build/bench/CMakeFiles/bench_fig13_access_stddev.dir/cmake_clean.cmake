file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_access_stddev.dir/bench_fig13_access_stddev.cc.o"
  "CMakeFiles/bench_fig13_access_stddev.dir/bench_fig13_access_stddev.cc.o.d"
  "bench_fig13_access_stddev"
  "bench_fig13_access_stddev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_access_stddev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
