# Empty dependencies file for bench_fig14_detail_accesses.
# This may be replaced when dependencies are built.
