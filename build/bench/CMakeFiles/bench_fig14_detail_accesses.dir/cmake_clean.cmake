file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_detail_accesses.dir/bench_fig14_detail_accesses.cc.o"
  "CMakeFiles/bench_fig14_detail_accesses.dir/bench_fig14_detail_accesses.cc.o.d"
  "bench_fig14_detail_accesses"
  "bench_fig14_detail_accesses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_detail_accesses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
