# Empty dependencies file for bench_fig15_data_skipping.
# This may be replaced when dependencies are built.
