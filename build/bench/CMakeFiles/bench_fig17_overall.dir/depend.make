# Empty dependencies file for bench_fig17_overall.
# This may be replaced when dependencies are built.
