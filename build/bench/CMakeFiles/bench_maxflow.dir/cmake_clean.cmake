file(REMOVE_RECURSE
  "CMakeFiles/bench_maxflow.dir/bench_maxflow.cc.o"
  "CMakeFiles/bench_maxflow.dir/bench_maxflow.cc.o.d"
  "bench_maxflow"
  "bench_maxflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_maxflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
