# Empty dependencies file for logstore.
# This may be replaced when dependencies are built.
