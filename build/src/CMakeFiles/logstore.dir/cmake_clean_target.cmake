file(REMOVE_RECURSE
  "liblogstore.a"
)
