
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/block_manager.cc" "src/CMakeFiles/logstore.dir/cache/block_manager.cc.o" "gcc" "src/CMakeFiles/logstore.dir/cache/block_manager.cc.o.d"
  "/root/repo/src/cache/ssd_block_cache.cc" "src/CMakeFiles/logstore.dir/cache/ssd_block_cache.cc.o" "gcc" "src/CMakeFiles/logstore.dir/cache/ssd_block_cache.cc.o.d"
  "/root/repo/src/cluster/cluster.cc" "src/CMakeFiles/logstore.dir/cluster/cluster.cc.o" "gcc" "src/CMakeFiles/logstore.dir/cluster/cluster.cc.o.d"
  "/root/repo/src/cluster/controller.cc" "src/CMakeFiles/logstore.dir/cluster/controller.cc.o" "gcc" "src/CMakeFiles/logstore.dir/cluster/controller.cc.o.d"
  "/root/repo/src/cluster/data_builder.cc" "src/CMakeFiles/logstore.dir/cluster/data_builder.cc.o" "gcc" "src/CMakeFiles/logstore.dir/cluster/data_builder.cc.o.d"
  "/root/repo/src/cluster/traffic_sim.cc" "src/CMakeFiles/logstore.dir/cluster/traffic_sim.cc.o" "gcc" "src/CMakeFiles/logstore.dir/cluster/traffic_sim.cc.o.d"
  "/root/repo/src/cluster/worker.cc" "src/CMakeFiles/logstore.dir/cluster/worker.cc.o" "gcc" "src/CMakeFiles/logstore.dir/cluster/worker.cc.o.d"
  "/root/repo/src/common/clock.cc" "src/CMakeFiles/logstore.dir/common/clock.cc.o" "gcc" "src/CMakeFiles/logstore.dir/common/clock.cc.o.d"
  "/root/repo/src/common/coding.cc" "src/CMakeFiles/logstore.dir/common/coding.cc.o" "gcc" "src/CMakeFiles/logstore.dir/common/coding.cc.o.d"
  "/root/repo/src/common/crc32c.cc" "src/CMakeFiles/logstore.dir/common/crc32c.cc.o" "gcc" "src/CMakeFiles/logstore.dir/common/crc32c.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/logstore.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/logstore.dir/common/logging.cc.o.d"
  "/root/repo/src/common/threadpool.cc" "src/CMakeFiles/logstore.dir/common/threadpool.cc.o" "gcc" "src/CMakeFiles/logstore.dir/common/threadpool.cc.o.d"
  "/root/repo/src/compress/codec.cc" "src/CMakeFiles/logstore.dir/compress/codec.cc.o" "gcc" "src/CMakeFiles/logstore.dir/compress/codec.cc.o.d"
  "/root/repo/src/consensus/raft.cc" "src/CMakeFiles/logstore.dir/consensus/raft.cc.o" "gcc" "src/CMakeFiles/logstore.dir/consensus/raft.cc.o.d"
  "/root/repo/src/core/logstore.cc" "src/CMakeFiles/logstore.dir/core/logstore.cc.o" "gcc" "src/CMakeFiles/logstore.dir/core/logstore.cc.o.d"
  "/root/repo/src/flow/balancer.cc" "src/CMakeFiles/logstore.dir/flow/balancer.cc.o" "gcc" "src/CMakeFiles/logstore.dir/flow/balancer.cc.o.d"
  "/root/repo/src/flow/dinic.cc" "src/CMakeFiles/logstore.dir/flow/dinic.cc.o" "gcc" "src/CMakeFiles/logstore.dir/flow/dinic.cc.o.d"
  "/root/repo/src/index/bkd_tree.cc" "src/CMakeFiles/logstore.dir/index/bkd_tree.cc.o" "gcc" "src/CMakeFiles/logstore.dir/index/bkd_tree.cc.o.d"
  "/root/repo/src/index/inverted_index.cc" "src/CMakeFiles/logstore.dir/index/inverted_index.cc.o" "gcc" "src/CMakeFiles/logstore.dir/index/inverted_index.cc.o.d"
  "/root/repo/src/logblock/format.cc" "src/CMakeFiles/logstore.dir/logblock/format.cc.o" "gcc" "src/CMakeFiles/logstore.dir/logblock/format.cc.o.d"
  "/root/repo/src/logblock/logblock_map.cc" "src/CMakeFiles/logstore.dir/logblock/logblock_map.cc.o" "gcc" "src/CMakeFiles/logstore.dir/logblock/logblock_map.cc.o.d"
  "/root/repo/src/logblock/logblock_reader.cc" "src/CMakeFiles/logstore.dir/logblock/logblock_reader.cc.o" "gcc" "src/CMakeFiles/logstore.dir/logblock/logblock_reader.cc.o.d"
  "/root/repo/src/logblock/logblock_writer.cc" "src/CMakeFiles/logstore.dir/logblock/logblock_writer.cc.o" "gcc" "src/CMakeFiles/logstore.dir/logblock/logblock_writer.cc.o.d"
  "/root/repo/src/objectstore/file_object_store.cc" "src/CMakeFiles/logstore.dir/objectstore/file_object_store.cc.o" "gcc" "src/CMakeFiles/logstore.dir/objectstore/file_object_store.cc.o.d"
  "/root/repo/src/objectstore/memory_object_store.cc" "src/CMakeFiles/logstore.dir/objectstore/memory_object_store.cc.o" "gcc" "src/CMakeFiles/logstore.dir/objectstore/memory_object_store.cc.o.d"
  "/root/repo/src/objectstore/simulated_object_store.cc" "src/CMakeFiles/logstore.dir/objectstore/simulated_object_store.cc.o" "gcc" "src/CMakeFiles/logstore.dir/objectstore/simulated_object_store.cc.o.d"
  "/root/repo/src/objectstore/tar_file.cc" "src/CMakeFiles/logstore.dir/objectstore/tar_file.cc.o" "gcc" "src/CMakeFiles/logstore.dir/objectstore/tar_file.cc.o.d"
  "/root/repo/src/prefetch/prefetch_service.cc" "src/CMakeFiles/logstore.dir/prefetch/prefetch_service.cc.o" "gcc" "src/CMakeFiles/logstore.dir/prefetch/prefetch_service.cc.o.d"
  "/root/repo/src/query/block_executor.cc" "src/CMakeFiles/logstore.dir/query/block_executor.cc.o" "gcc" "src/CMakeFiles/logstore.dir/query/block_executor.cc.o.d"
  "/root/repo/src/query/engine.cc" "src/CMakeFiles/logstore.dir/query/engine.cc.o" "gcc" "src/CMakeFiles/logstore.dir/query/engine.cc.o.d"
  "/root/repo/src/query/sql_parser.cc" "src/CMakeFiles/logstore.dir/query/sql_parser.cc.o" "gcc" "src/CMakeFiles/logstore.dir/query/sql_parser.cc.o.d"
  "/root/repo/src/rowstore/row_store.cc" "src/CMakeFiles/logstore.dir/rowstore/row_store.cc.o" "gcc" "src/CMakeFiles/logstore.dir/rowstore/row_store.cc.o.d"
  "/root/repo/src/rowstore/wal.cc" "src/CMakeFiles/logstore.dir/rowstore/wal.cc.o" "gcc" "src/CMakeFiles/logstore.dir/rowstore/wal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
