# Empty dependencies file for multi_tenant_audit.
# This may be replaced when dependencies are built.
