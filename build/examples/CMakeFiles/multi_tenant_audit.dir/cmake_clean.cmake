file(REMOVE_RECURSE
  "CMakeFiles/multi_tenant_audit.dir/multi_tenant_audit.cpp.o"
  "CMakeFiles/multi_tenant_audit.dir/multi_tenant_audit.cpp.o.d"
  "multi_tenant_audit"
  "multi_tenant_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_tenant_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
