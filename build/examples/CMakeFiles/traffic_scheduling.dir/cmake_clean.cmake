file(REMOVE_RECURSE
  "CMakeFiles/traffic_scheduling.dir/traffic_scheduling.cpp.o"
  "CMakeFiles/traffic_scheduling.dir/traffic_scheduling.cpp.o.d"
  "traffic_scheduling"
  "traffic_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
