# Empty dependencies file for traffic_scheduling.
# This may be replaced when dependencies are built.
