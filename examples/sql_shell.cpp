// Interactive SQL shell over an embedded LogStore preloaded with synthetic
// audit logs for a few tenants. Reads one query per line from stdin; with
// no terminal attached it runs a scripted demo session.
//
//   ./examples/sql_shell
//   echo "SELECT ip FROM request_log WHERE tenant_id = 1 LIMIT 3" |
//     ./examples/sql_shell

#include <cstdio>
#include <iostream>
#include <string>

#include "core/logstore.h"
#include "query/sql_parser.h"
#include "workload/loggen.h"

namespace {

void PrintResult(const logstore::query::QueryResult& result) {
  for (const auto& name : result.columns) printf("%-24s", name.c_str());
  printf("\n");
  const size_t shown = std::min<size_t>(result.rows.size(), 20);
  for (size_t r = 0; r < shown; ++r) {
    for (const auto& value : result.rows[r]) {
      if (value.type == logstore::logblock::ColumnType::kInt64) {
        printf("%-24lld", static_cast<long long>(value.i));
      } else {
        printf("%-24s", value.s.substr(0, 22).c_str());
      }
    }
    printf("\n");
  }
  if (result.rows.size() > shown) {
    printf("... (%zu more rows)\n", result.rows.size() - shown);
  }
  printf("-- %zu row(s), %.1f ms, %u/%u LogBlocks pruned by map, "
         "%u column blocks scanned, %u skipped\n",
         result.rows.size(), result.stats.elapsed_us / 1000.0,
         result.stats.logblocks_pruned, result.stats.logblocks_total,
         result.stats.exec.column_blocks_scanned,
         result.stats.exec.column_blocks_skipped);
}

}  // namespace

int main() {
  logstore::LogStoreOptions options;
  options.engine.cache_options.ssd_dir.clear();
  auto db = logstore::LogStore::Open(options);
  if (!db.ok()) {
    fprintf(stderr, "open failed: %s\n", db.status().ToString().c_str());
    return 1;
  }

  // Preload: 3 tenants, 12 hours of logs each.
  logstore::workload::LogGenerator gen(99);
  const int64_t kHour = 3600ll * 1'000'000;
  for (uint64_t tenant = 1; tenant <= 3; ++tenant) {
    (void)(*db)->Append(tenant, gen.Generate(tenant, 30'000, 0, 12 * kHour));
  }
  (void)(*db)->Flush();
  printf("LogStore SQL shell — table request_log(tenant_id, ts, ip, latency, "
         "fail, log)\n");
  printf("preloaded tenants 1-3 with 30k rows each over ts [0, %lld)\n",
         static_cast<long long>(12 * kHour));
  printf("example: SELECT log FROM request_log WHERE tenant_id = 1 AND "
         "fail = 'true' LIMIT 5\n\n");

  std::string line;
  bool any_input = false;
  while (printf("logstore> "), fflush(stdout), std::getline(std::cin, line)) {
    any_input = true;
    if (line == "quit" || line == "exit") break;
    if (line.empty()) continue;
    auto query = logstore::query::ParseSql(line, (*db)->schema());
    if (!query.ok()) {
      printf("error: %s\n", query.status().ToString().c_str());
      continue;
    }
    auto result = (*db)->Query(*query);
    if (!result.ok()) {
      printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    PrintResult(*result);
  }

  if (!any_input) {
    // Scripted demo when stdin is closed immediately.
    const char* demo[] = {
        "SELECT ip, latency, log FROM request_log WHERE tenant_id = 1 AND "
        "fail = 'true' LIMIT 5",
        "SELECT log FROM request_log WHERE tenant_id = 2 AND log MATCH "
        "'connection timeout' LIMIT 3",
        "SELECT ts, ip FROM request_log WHERE tenant_id = 3 AND latency >= "
        "1500 LIMIT 5",
    };
    for (const char* sql : demo) {
      printf("\nlogstore> %s\n", sql);
      auto query = logstore::query::ParseSql(sql, (*db)->schema());
      if (!query.ok()) continue;
      auto result = (*db)->Query(*query);
      if (result.ok()) PrintResult(*result);
    }
  }
  return 0;
}
