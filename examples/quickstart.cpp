// Quickstart: open an embedded LogStore, ingest logs for a tenant, archive
// them to (in-memory) object storage, and run the paper's log-retrieval
// query template plus a small aggregation.
//
//   ./examples/quickstart

#include <cstdio>

#include "core/logstore.h"
#include "query/aggregation.h"

using logstore::logblock::RowBatch;
using logstore::logblock::Value;

int main() {
  // 1. Open an embedded LogStore with the paper's request_log schema.
  //    (Set options.storage_dir to persist LogBlocks to local disk.)
  logstore::LogStoreOptions options;
  options.engine.cache_options.ssd_dir.clear();  // memory cache only
  auto db = logstore::LogStore::Open(options);
  if (!db.ok()) {
    fprintf(stderr, "open failed: %s\n", db.status().ToString().c_str());
    return 1;
  }

  // 2. Ingest a few application log records for tenant 42. Writes are
  //    immediately visible to queries (real-time store), no flush needed.
  const uint64_t kTenant = 42;
  struct Row {
    int64_t ts;
    const char* ip;
    int64_t latency;
    const char* fail;
    const char* log;
  };
  const Row rows[] = {
      {1000, "192.168.0.1", 12, "false", "GET /api/v1/instances ok"},
      {2000, "192.168.0.1", 250, "false", "GET /api/v1/databases slow"},
      {3000, "192.168.0.7", 8, "false", "POST /api/v1/backups ok"},
      {4000, "192.168.0.1", 1800, "true",
       "GET /api/v1/databases failed: connection timeout"},
      {5000, "192.168.0.9", 15, "false", "GET /api/v1/metrics ok"},
  };
  for (const Row& r : rows) {
    RowBatch batch((*db)->schema());
    batch.AddRow({Value::Int64(kTenant), Value::Int64(r.ts),
                  Value::String(r.ip), Value::Int64(r.latency),
                  Value::String(r.fail), Value::String(r.log)});
    auto status = (*db)->Append(kTenant, batch);
    if (!status.ok()) {
      fprintf(stderr, "append failed: %s\n", status.ToString().c_str());
      return 1;
    }
  }

  // 3. Archive the row store into immutable, indexed, compressed LogBlocks
  //    on object storage (normally a background task).
  auto flushed = (*db)->Flush();
  printf("archived into %d LogBlock(s), %llu bytes on object storage\n",
         flushed.value_or(0),
         static_cast<unsigned long long>((*db)->GetStats().object_bytes));

  // 4. The paper's retrieval template: time range + ip + latency + fail.
  logstore::query::LogQuery query;
  query.tenant_id = kTenant;
  query.ts_min = 0;
  query.ts_max = 10'000;
  query.predicates = {
      logstore::query::Predicate::StringEq("ip", "192.168.0.1"),
      logstore::query::Predicate::Int64Compare(
          "latency", logstore::query::CompareOp::kGe, 100),
  };
  query.select_columns = {"ts", "log"};
  auto result = (*db)->Query(query);
  if (!result.ok()) {
    fprintf(stderr, "query failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  printf("\nslow requests from 192.168.0.1:\n");
  for (const auto& row : result->rows) {
    printf("  ts=%lld  %s\n", static_cast<long long>(row[0].i),
           row[1].s.c_str());
  }

  // 5. Full-text search over the log body.
  logstore::query::LogQuery search;
  search.tenant_id = kTenant;
  search.predicates = {logstore::query::Predicate::Match("log", "timeout")};
  search.select_columns = {"log"};
  auto found = (*db)->Query(search);
  printf("\nfull-text MATCH 'timeout': %zu hit(s)\n",
         found.ok() ? found->rows.size() : 0);

  // 6. Lightweight analytics: which IPs accessed the API most?
  logstore::query::LogQuery all;
  all.tenant_id = kTenant;
  all.select_columns = {"ip"};
  auto ips = (*db)->Query(all);
  printf("\ntop source IPs:\n");
  for (const auto& group : logstore::query::GroupCountTopK(
           logstore::query::QueryEngine::Column(*ips, "ip"), 3)) {
    printf("  %-16s %llu requests\n", group.key.c_str(),
           static_cast<unsigned long long>(group.count));
  }
  return 0;
}
