// Traffic scheduling demo: a skewed multi-tenant write workload creates a
// hotspot; the controller's monitor/balancer/router loop eliminates it with
// the max-flow algorithm (§4). Prints per-worker load before and after —
// the live version of Figures 13/14.
//
//   ./examples/traffic_scheduling

#include <algorithm>
#include <cstdio>
#include <vector>

#include "cluster/traffic_sim.h"

using logstore::cluster::BalancePolicy;
using logstore::cluster::TrafficSimMetrics;
using logstore::cluster::TrafficSimOptions;
using logstore::cluster::TrafficSimulator;

namespace {

void PrintWorkerBars(const TrafficSimMetrics& metrics, int64_t capacity) {
  for (size_t w = 0; w < metrics.worker_accesses.size(); ++w) {
    const double util = static_cast<double>(metrics.worker_accesses[w]) /
                        static_cast<double>(capacity);
    const int bars = std::min(60, static_cast<int>(util * 40));
    printf("  worker %-2zu |%-60s| %5.0f%% %s\n", w,
           std::string(bars, '#').c_str(), util * 100,
           util > 1.0 ? "OVERLOADED" : "");
  }
}

}  // namespace

int main() {
  TrafficSimOptions options;
  options.num_workers = 8;
  options.shards_per_worker = 2;
  options.num_tenants = 1000;
  options.theta = 0.99;  // production-like skew
  options.policy = BalancePolicy::kMaxFlow;
  TrafficSimulator sim(options);

  printf("1000 tenants, Zipfian theta=0.99, 8 workers x 2 shards\n");
  printf("offered load: %lld entries/s, per-worker capacity %lld/s\n\n",
         static_cast<long long>(options.total_offered_load == 0
                                    ? 8 * options.worker_capacity * 3 / 4
                                    : options.total_offered_load),
         static_cast<long long>(options.worker_capacity));

  // Before: consistent-hash placement only, no traffic control.
  const auto before = sim.MeasureUnbalancedRound();
  printf("--- before balancing (consistent hash only) ---\n");
  PrintWorkerBars(before, options.worker_capacity);
  printf("  worker access stddev: %.0f\n\n", before.WorkerAccessStddev());

  // Run with the hotspot manager active: monitor -> max-flow balancer ->
  // router, every 3 simulated seconds.
  const auto after = sim.Run(/*warmup_rounds=*/20, /*measure_rounds=*/10);
  printf("--- after max-flow balancing (%d rebalance cycles) ---\n",
         after.rebalances);
  PrintWorkerBars(after, options.worker_capacity);
  printf("  worker access stddev: %.0f (%.1fx lower)\n\n",
         after.WorkerAccessStddev(),
         before.WorkerAccessStddev() /
             std::max(1.0, after.WorkerAccessStddev()));

  printf("throughput: %.0f -> %.0f entries/s (%.0f%% of offered)\n",
         before.throughput, after.throughput,
         100.0 * after.throughput / after.offered);
  printf("batch write latency: %.1f ms -> %.1f ms\n", before.avg_latency_ms,
         after.avg_latency_ms);
  printf("routing rules: %zu -> %zu (+%zu added by the balancer)\n",
         static_cast<size_t>(options.num_tenants), after.route_count,
         after.route_count - options.num_tenants);
  return 0;
}
