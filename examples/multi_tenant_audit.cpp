// Multi-tenant DBaaS audit-log scenario: hundreds of tenants with Zipfian
// data volumes share one LogStore. Demonstrates per-tenant physical
// isolation on object storage, per-tenant billing, and differentiated
// retention policies — the §3.1 multi-tenant storage design.
//
//   ./examples/multi_tenant_audit

#include <cstdio>

#include "core/logstore.h"
#include "workload/loggen.h"
#include "workload/zipfian.h"

int main() {
  logstore::LogStoreOptions options;
  options.engine.cache_options.ssd_dir.clear();
  auto db = logstore::LogStore::Open(options);
  if (!db.ok()) {
    fprintf(stderr, "open failed: %s\n", db.status().ToString().c_str());
    return 1;
  }

  // Ingest a day of audit logs for 200 tenants with production-like skew
  // (theta = 0.99; see paper Figure 2).
  const int kTenants = 200;
  const int64_t kDayMicros = 24ll * 3600 * 1'000'000;
  const auto shares = logstore::workload::ZipfianShares(kTenants, 0.99);
  logstore::workload::LogGenerator gen(2024);

  uint64_t total_rows = 0;
  for (int t = 0; t < kTenants; ++t) {
    const uint32_t rows =
        static_cast<uint32_t>(shares[t] * 200'000);  // 200k rows total
    if (rows == 0) continue;
    auto status = (*db)->Append(t, gen.Generate(t, rows, 0, kDayMicros));
    if (!status.ok()) {
      fprintf(stderr, "append failed: %s\n", status.ToString().c_str());
      return 1;
    }
    total_rows += rows;
  }
  auto flushed = (*db)->Flush();
  if (!flushed.ok()) {
    fprintf(stderr, "flush failed: %s\n", flushed.status().ToString().c_str());
    return 1;
  }

  const auto stats = (*db)->GetStats();
  printf("ingested %llu rows for %llu tenants -> %llu LogBlocks, %llu bytes\n",
         static_cast<unsigned long long>(total_rows),
         static_cast<unsigned long long>(stats.tenant_count),
         static_cast<unsigned long long>(stats.logblocks),
         static_cast<unsigned long long>(stats.object_bytes));

  // Billing: storage is accounted per tenant because every tenant's data
  // lives in its own LogBlocks (physical isolation).
  printf("\nper-tenant storage (top 5 by bytes):\n");
  printf("  %-8s %-12s\n", "tenant", "bytes");
  for (int t = 0; t < 5; ++t) {
    printf("  %-8d %-12llu\n", t,
           static_cast<unsigned long long>((*db)->TenantBytes(t)));
  }
  printf("  (tenant 0 holds %.1fx the storage of tenant 4 — Zipfian skew)\n",
         static_cast<double>((*db)->TenantBytes(0)) /
             static_cast<double>((*db)->TenantBytes(4)));

  // Differentiated retention: tenant 0 is a bank (keeps everything);
  // tenant 1 keeps only the last 6 hours; tenant 2 purges the full day.
  const int64_t kSixHours = 6ll * 3600 * 1'000'000;
  auto expired1 = (*db)->Expire(1, kDayMicros - kSixHours);
  auto expired2 = (*db)->Expire(2, kDayMicros + 1);
  printf("\nretention: tenant 1 expired %d block(s), tenant 2 expired %d\n",
         expired1.value_or(-1), expired2.value_or(-1));
  printf("tenant 1 bytes now: %llu, tenant 2 bytes now: %llu\n",
         static_cast<unsigned long long>((*db)->TenantBytes(1)),
         static_cast<unsigned long long>((*db)->TenantBytes(2)));

  // Queries remain tenant-scoped: expiring tenant 2 did not affect 0.
  logstore::query::LogQuery query;
  query.tenant_id = 0;
  query.predicates = {logstore::query::Predicate::StringEq("fail", "true")};
  query.select_columns = {"log"};
  auto failures = (*db)->Query(query);
  printf("\ntenant 0 failure-audit query: %zu failed requests on record\n",
         failures.ok() ? failures->rows.size() : 0);

  query.tenant_id = 2;
  auto gone = (*db)->Query(query);
  printf("tenant 2 after full expiration: %zu rows (expected 0)\n",
         gone.ok() ? gone->rows.size() : 0);
  return 0;
}
