// Interactive log search and root-cause analysis over archived logs on a
// (simulated) remote object store. Shows the §5 query optimizations doing
// their work: LogBlock-map pruning, index probes, block skipping, and the
// cache making a repeated query much faster.
//
//   ./examples/log_search

#include <cstdio>

#include "core/logstore.h"
#include "query/aggregation.h"
#include "workload/loggen.h"

int main() {
  // Simulated OSS latency makes the optimization effects visible.
  logstore::LogStoreOptions options;
  options.simulate_object_latency = true;
  options.simulated.first_byte_latency_us = 2000;  // 2 ms per request
  options.simulated.bandwidth_bytes_per_us = 100;  // 100 MB/s
  options.engine.cache_options.ssd_dir.clear();
  auto db = logstore::LogStore::Open(options);
  if (!db.ok()) {
    fprintf(stderr, "open failed: %s\n", db.status().ToString().c_str());
    return 1;
  }

  // 12 hours of logs for one busy tenant, archived into LogBlocks.
  const uint64_t kTenant = 7;
  const int64_t kHour = 3600ll * 1'000'000;
  logstore::workload::LogGenerator gen(7);
  for (int hour = 0; hour < 12; ++hour) {
    auto status = (*db)->Append(
        kTenant, gen.Generate(kTenant, 20'000, hour * kHour, (hour + 1) * kHour));
    if (!status.ok()) return 1;
    if (!(*db)->Flush().ok()) return 1;  // one+ LogBlock per hour
  }
  printf("archived %llu LogBlocks covering 12 hours (240k rows)\n\n",
         static_cast<unsigned long long>((*db)->GetStats().logblocks));

  auto run = [&](const char* label, const logstore::query::LogQuery& query) {
    auto result = (*db)->Query(query);
    if (!result.ok()) {
      fprintf(stderr, "query failed: %s\n",
              result.status().ToString().c_str());
      return logstore::query::QueryResult();
    }
    printf("%-44s %6zu rows in %6.1f ms  (blocks: %u pruned by map, "
           "%u scanned, %u skipped)\n",
           label, result->rows.size(), result->stats.elapsed_us / 1000.0,
           result->stats.logblocks_pruned,
           result->stats.exec.column_blocks_scanned,
           result->stats.exec.column_blocks_skipped);
    return std::move(result).value();
  };

  // Step 1: an alert fired between hours 5 and 6 — find timeouts there.
  logstore::query::LogQuery investigate;
  investigate.tenant_id = kTenant;
  investigate.ts_min = 5 * kHour;
  investigate.ts_max = 6 * kHour;
  investigate.predicates = {
      logstore::query::Predicate::Match("log", "failed connection timeout")};
  investigate.select_columns = {"ts", "ip", "latency"};
  auto hits = run("[1] timeouts in the alert window", investigate);

  // Step 2: same query again — the multi-level cache serves it.
  run("[2] same query, warm cache", investigate);

  // Step 3: which IPs are behind the failures across the whole day?
  logstore::query::LogQuery who;
  who.tenant_id = kTenant;
  who.predicates = {logstore::query::Predicate::StringEq("fail", "true")};
  who.select_columns = {"ip"};
  auto failures = run("[3] all failures, full 12 hours", who);
  printf("\n    top offender IPs:\n");
  for (const auto& group : logstore::query::GroupCountTopK(
           logstore::query::QueryEngine::Column(failures, "ip"), 3)) {
    printf("      %-16s %llu failures\n", group.key.c_str(),
           static_cast<unsigned long long>(group.count));
  }

  // Step 4: latency distribution of the slow requests (unindexed column:
  // served by block-SMA skipping plus scan).
  logstore::query::LogQuery slow;
  slow.tenant_id = kTenant;
  slow.predicates = {logstore::query::Predicate::Int64Compare(
      "latency", logstore::query::CompareOp::kGe, 1000)};
  slow.select_columns = {"latency"};
  auto slow_result = run("\n[4] requests slower than 1s", slow);
  const auto rollup = logstore::query::RollupInt64(
      logstore::query::QueryEngine::Column(slow_result, "latency"));
  printf("    latency of those: min=%lldms max=%lldms mean=%.0fms\n",
         static_cast<long long>(rollup.min),
         static_cast<long long>(rollup.max), rollup.mean());

  (void)hits;
  return 0;
}
