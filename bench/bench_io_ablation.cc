// Ablation of the IO-path design choices called out in DESIGN.md: the
// aligned-block size and the adjacent-read coalescing of the prefetch
// service (Figure 10's split/merge). Runs the standard per-tenant query set
// against simulated OSS for each configuration.
//
// Expected: tiny blocks without coalescing drown in round trips; huge
// blocks overfetch; coalescing recovers the scan-friendly behaviour at any
// block size, making the block size mostly a cache-granularity knob.

#include <cstdio>
#include <string>
#include <vector>

#include "query_bench_common.h"

using namespace logstore;
using namespace logstore::bench;

namespace {

double RunConfig(Dataset* dataset, uint64_t block_size, bool coalesce,
                 uint32_t tenants) {
  query::EngineOptions options;
  options.use_data_skipping = true;
  options.use_cache = true;
  options.use_prefetch = true;
  options.prefetch_threads = 16;
  options.io_block_size = block_size;
  options.max_coalesced_bytes = coalesce ? 4ull << 20 : block_size;
  options.cache_options.memory_capacity_bytes = 512ull << 20;
  options.cache_options.ssd_dir.clear();
  auto engine = query::QueryEngine::Open(dataset->store.get(), options);
  if (!engine.ok()) abort();

  workload::QueryGenerator qgen(5);
  double total_ms = 0;
  for (uint32_t t = 0; t < tenants; ++t) {
    for (const auto& q :
         qgen.TenantQuerySet(t, 0, dataset->options.history_micros)) {
      (*engine)->ClearCaches();
      const int64_t start = NowUs();
      auto result = (*engine)->Execute(q, dataset->map);
      if (!result.ok()) abort();
      total_ms += (NowUs() - start) / 1000.0;
    }
  }
  return total_ms;
}

}  // namespace

int main() {
  const bool smoke = BenchSmoke();
  DatasetOptions data_options;
  data_options.num_tenants = 100;
  data_options.total_rows = smoke ? 100'000 : 300'000;
  Dataset dataset;
  BuildDataset(data_options, /*simulate_oss=*/true, &dataset);

  const uint32_t kTenants = smoke ? 5 : 15;
  printf("=== IO ablation: block size x coalescing (cold-cache query set, "
         "%u tenants x 6 queries) ===\n",
         kTenants);
  printf("%-14s %-16s %-16s %-10s\n", "block size", "coalesced (ms)",
         "per-block (ms)", "merge win");
  struct Row {
    uint64_t block_size;
    double merged, split;
  };
  std::vector<Row> rows;
  for (uint64_t block_size : {4096ull, 65536ull, 524288ull}) {
    const double merged = RunConfig(&dataset, block_size, true, kTenants);
    const double split = RunConfig(&dataset, block_size, false, kTenants);
    printf("%-14llu %-16.0f %-16.0f %.2fx\n",
           static_cast<unsigned long long>(block_size), merged, split,
           split / merged);
    rows.push_back({block_size, merged, split});
  }
  printf("\nFigure 10's request merge matters most at small block sizes,\n"
         "where per-request round trips would otherwise dominate scans.\n");

  std::string json = "{\n  \"bench\": \"io_ablation\",\n";
  json += "  \"smoke\": " + std::string(smoke ? "true" : "false") + ",\n";
  json += "  \"tenants\": " + std::to_string(kTenants) + ",\n";
  json += "  \"points\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    json += "    {\"block_size\": " + std::to_string(rows[i].block_size) +
            ", \"coalesced_ms\": " + JsonNum(rows[i].merged) +
            ", \"per_block_ms\": " + JsonNum(rows[i].split) +
            ", \"merge_win\": " + JsonNum(rows[i].split / rows[i].merged) +
            "}";
    json += (i + 1 < rows.size()) ? ",\n" : "\n";
  }
  json += "  ]\n}";
  WriteBenchJson("BENCH_io_ablation.json", json);
  return 0;
}
