// Backpressure ablation (§4.2): a write surge against a Raft group with a
// deliberately slow apply path, with BFC queue limits on vs effectively
// off. With BFC, queues stay bounded and the client observes
// ResourceExhausted rejections (and can retry at a lower rate); without
// BFC the internal queues grow without bound — the "explosion of nodes'
// internal queues" the paper guards against.

#include <algorithm>
#include <cstdio>

#include "consensus/raft.h"

using namespace logstore;
using namespace logstore::consensus;

namespace {

struct SurgeResult {
  int accepted = 0;
  int rejected = 0;
  size_t peak_sync_queue = 0;
  size_t peak_apply_queue = 0;
  uint64_t applied = 0;
};

SurgeResult RunSurge(bool bfc_enabled) {
  RaftOptions options;
  options.election_timeout_min_ms = 50;
  options.election_timeout_max_ms = 100;
  options.heartbeat_interval_ms = 20;
  options.apply_per_tick = 2;  // slow apply path (e.g. saturated disks)
  if (bfc_enabled) {
    options.sync_queue_max_items = 64;
    options.apply_queue_max_items = 64;
    options.max_uncommitted_entries = 128;
  } else {
    options.sync_queue_max_items = 1u << 30;  // effectively unbounded
    options.apply_queue_max_items = 1u << 30;
    options.max_uncommitted_entries = 1u << 30;
  }

  RaftCluster cluster(3, options, 17);
  const int leader = cluster.WaitForLeader();
  if (leader < 0) abort();

  SurgeResult result;
  // 200 rounds of a 40-entry/round surge, ~4x the apply throughput.
  for (int round = 0; round < 200; ++round) {
    for (int i = 0; i < 40; ++i) {
      if (cluster.node(leader).Propose("surge-entry-payload").ok()) {
        result.accepted++;
      } else {
        result.rejected++;
      }
    }
    cluster.Tick(30);
    for (int n = 0; n < cluster.num_nodes(); ++n) {
      result.peak_sync_queue =
          std::max(result.peak_sync_queue, cluster.node(n).sync_queue_depth());
      result.peak_apply_queue = std::max(
          result.peak_apply_queue, cluster.node(n).apply_queue_depth());
    }
  }
  result.applied = cluster.node(leader).last_applied();
  return result;
}

}  // namespace

int main() {
  printf("=== Backpressure flow control (BFC) under a 4x write surge ===\n\n");
  const SurgeResult with_bfc = RunSurge(true);
  const SurgeResult without_bfc = RunSurge(false);

  printf("%-26s %-14s %-14s\n", "metric", "BFC on", "BFC off");
  printf("%-26s %-14d %-14d\n", "writes accepted", with_bfc.accepted,
         without_bfc.accepted);
  printf("%-26s %-14d %-14d\n", "writes rejected (client)", with_bfc.rejected,
         without_bfc.rejected);
  printf("%-26s %-14zu %-14zu\n", "peak sync queue depth",
         with_bfc.peak_sync_queue, without_bfc.peak_sync_queue);
  printf("%-26s %-14zu %-14zu\n", "peak apply queue depth",
         with_bfc.peak_apply_queue, without_bfc.peak_apply_queue);
  printf("%-26s %-14llu %-14llu\n", "entries applied",
         static_cast<unsigned long long>(with_bfc.applied),
         static_cast<unsigned long long>(without_bfc.applied));

  printf("\nwith BFC the system sheds load at the client (rejections) and "
         "keeps every internal queue bounded;\nwithout BFC queues grow with "
         "the surge (unbounded memory) while applying no faster.\n");
  return 0;
}
