// Figure 16: impact of the parallel prefetch strategy on query latency.
//
// Three configurations over the same per-tenant query set:
//   local     - data on local storage (no remote latency)
//   oss+pf    - data on simulated OSS, 32 prefetch threads + caches
//   oss-serial- data on simulated OSS, serial on-demand reads, no prefetch
//
// All three figure rows pin query_threads=1 so they isolate the prefetch
// axis exactly as the paper's figure does; a separate sweep then scales
// query_threads over the prefetch configuration (cold and warm cache) and
// everything is emitted to BENCH_fig16.json.
//
// Expected shape (paper): serial OSS is ~18.5x slower than local; parallel
// prefetch narrows the gap to ~6x. Re-running a query warm is ~6x faster
// than its first (cold) execution thanks to the multi-level cache.

#include <cstdio>
#include <string>
#include <vector>

#include "query_bench_common.h"

using namespace logstore;
using namespace logstore::bench;

namespace {

struct ConfigResult {
  double total_ms = 0;   // first (cold-cache) pass
  double repeat_ms = 0;  // warm re-run of the same queries
};

ConfigResult RunConfig(Dataset* dataset, bool use_prefetch, bool use_cache,
                       uint32_t tenants, int query_threads) {
  query::EngineOptions options;
  options.use_data_skipping = true;
  options.use_cache = use_cache;
  options.use_prefetch = use_prefetch;
  options.query_threads = query_threads;
  options.prefetch_threads = 32;  // the paper's thread count
  options.io_block_size = 8 * 1024;
  options.cache_options.memory_capacity_bytes = 512ull << 20;
  options.cache_options.ssd_dir.clear();
  auto engine = query::QueryEngine::Open(dataset->store.get(), options);
  if (!engine.ok()) abort();

  ConfigResult result;
  for (int pass = 0; pass < 2; ++pass) {
    double pass_ms = 0;
    workload::QueryGenerator pass_qgen(5);  // identical query set per pass
    for (uint32_t t = 0; t < tenants; ++t) {
      for (const auto& q :
           pass_qgen.TenantQuerySet(t, 0, dataset->options.history_micros)) {
        const int64_t start = NowUs();
        auto r = (*engine)->Execute(q, dataset->map);
        if (!r.ok()) abort();
        pass_ms += (NowUs() - start) / 1000.0;
      }
    }
    (pass == 0 ? result.total_ms : result.repeat_ms) = pass_ms;
  }
  return result;
}

}  // namespace

int main() {
  const bool smoke = BenchSmoke();
  const uint32_t kTenants = smoke ? 6 : 25;
  const std::vector<int> kThreadSweep =
      smoke ? std::vector<int>{1, 8} : std::vector<int>{1, 2, 4, 8, 16};
  DatasetOptions data_options;
  data_options.num_tenants = 100;
  data_options.total_rows = smoke ? 60'000 : 300'000;

  printf("building local and OSS datasets...%s\n", smoke ? " (smoke)" : "");
  Dataset local, oss1, oss2;
  BuildDataset(data_options, /*simulate_oss=*/false, &local);
  BuildDataset(data_options, /*simulate_oss=*/true, &oss1);
  BuildDataset(data_options, /*simulate_oss=*/true, &oss2);

  printf("running %u tenants x 6 queries per configuration...\n\n", kTenants);
  const auto local_result = RunConfig(&local, /*use_prefetch=*/false,
                                      /*use_cache=*/false, kTenants, 1);
  const auto prefetch_result = RunConfig(&oss1, /*use_prefetch=*/true,
                                         /*use_cache=*/true, kTenants, 1);
  const auto serial_result = RunConfig(&oss2, /*use_prefetch=*/false,
                                       /*use_cache=*/false, kTenants, 1);

  printf("=== Figure 16: total query-set latency per configuration ===\n");
  printf("%-28s %-14s %-12s\n", "configuration", "cold (ms)", "vs local");
  printf("%-28s %-14.0f %-12.2f\n", "local storage", local_result.total_ms,
         1.0);
  printf("%-28s %-14.0f %-12.2f\n", "OSS + parallel prefetch(32)",
         prefetch_result.total_ms,
         prefetch_result.total_ms / local_result.total_ms);
  printf("%-28s %-14.0f %-12.2f\n", "OSS w/o parallel prefetch",
         serial_result.total_ms,
         serial_result.total_ms / local_result.total_ms);

  printf("\npaper shape: serial ~18.5x local, prefetch narrows to ~6x\n");
  printf("measured:    serial %.1fx local, prefetch %.1fx local "
         "(prefetch %.1fx faster than serial)\n",
         serial_result.total_ms / local_result.total_ms,
         prefetch_result.total_ms / local_result.total_ms,
         serial_result.total_ms / prefetch_result.total_ms);

  printf("\n=== multi-level cache: repeated query speedup ===\n");
  printf("first run %.0f ms, second (warm) run %.0f ms -> %.1fx faster "
         "(paper: ~6x)\n",
         prefetch_result.total_ms, prefetch_result.repeat_ms,
         prefetch_result.total_ms / std::max(1.0, prefetch_result.repeat_ms));

  // Parallel LogBlock execution on top of prefetch: sweep query_threads
  // over the optimized configuration (fresh engine per point, so the first
  // pass is always cold-cache).
  printf("\n=== query_threads sweep, OSS + prefetch + caches ===\n");
  printf("%-14s %-14s %-14s %-10s\n", "query_threads", "cold (ms)",
         "warm (ms)", "vs 1thr");
  std::vector<std::pair<int, ConfigResult>> sweep;
  for (int threads : kThreadSweep) {
    sweep.emplace_back(threads, RunConfig(&oss1, /*use_prefetch=*/true,
                                          /*use_cache=*/true, kTenants,
                                          threads));
    printf("%-14d %-14.0f %-14.0f %-10.2f\n", threads,
           sweep.back().second.total_ms, sweep.back().second.repeat_ms,
           sweep.front().second.total_ms /
               std::max(1.0, sweep.back().second.total_ms));
  }

  std::string json = "{\n  \"bench\": \"fig16_prefetch\",\n";
  json += "  \"smoke\": " + std::string(smoke ? "true" : "false") + ",\n";
  json += "  \"tenants\": " + std::to_string(kTenants) + ",\n";
  json += "  \"configs\": {\n";
  auto config_json = [](const char* name, const ConfigResult& r) {
    return "    \"" + std::string(name) + "\": {\"cold_ms\": " +
           JsonNum(r.total_ms) + ", \"warm_ms\": " + JsonNum(r.repeat_ms) +
           "}";
  };
  json += config_json("local", local_result) + ",\n";
  json += config_json("oss_prefetch", prefetch_result) + ",\n";
  json += config_json("oss_serial", serial_result) + "\n  },\n";
  json += "  \"threads_sweep\": [\n";
  for (size_t i = 0; i < sweep.size(); ++i) {
    json += "    {\"query_threads\": " + std::to_string(sweep[i].first) +
            ", \"cold_ms\": " + JsonNum(sweep[i].second.total_ms) +
            ", \"warm_ms\": " + JsonNum(sweep[i].second.repeat_ms) +
            ", \"cold_speedup_vs_1\": " +
            JsonNum(sweep.front().second.total_ms /
                    std::max(1.0, sweep[i].second.total_ms)) +
            "}";
    json += (i + 1 < sweep.size()) ? ",\n" : "\n";
  }
  json += "  ]\n}";
  WriteBenchJson("BENCH_fig16.json", json);
  return 0;
}
