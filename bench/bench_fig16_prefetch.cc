// Figure 16: impact of the parallel prefetch strategy on query latency.
//
// Three configurations over the same per-tenant query set:
//   local     - data on local storage (no remote latency)
//   oss+pf    - data on simulated OSS, 32 prefetch threads + caches
//   oss-serial- data on simulated OSS, serial on-demand reads, no prefetch
//
// Expected shape (paper): serial OSS is ~18.5x slower than local; parallel
// prefetch narrows the gap to ~6x. Re-running a query warm is ~6x faster
// than its first (cold) execution thanks to the multi-level cache.

#include <cstdio>
#include <vector>

#include "query_bench_common.h"

using namespace logstore;
using namespace logstore::bench;

namespace {

struct ConfigResult {
  double total_ms = 0;
  double repeat_ms = 0;  // warm re-run of the same queries
};

ConfigResult RunConfig(Dataset* dataset, bool use_prefetch, bool use_cache,
                       uint32_t tenants) {
  query::EngineOptions options;
  options.use_data_skipping = true;
  options.use_cache = use_cache;
  options.use_prefetch = use_prefetch;
  options.prefetch_threads = 32;  // the paper's thread count
  options.io_block_size = 8 * 1024;
  options.cache_options.memory_capacity_bytes = 512ull << 20;
  options.cache_options.ssd_dir.clear();
  auto engine = query::QueryEngine::Open(dataset->store.get(), options);
  if (!engine.ok()) abort();

  ConfigResult result;
  workload::QueryGenerator qgen(5);
  for (int pass = 0; pass < 2; ++pass) {
    double pass_ms = 0;
    workload::QueryGenerator pass_qgen(5);  // identical query set per pass
    for (uint32_t t = 0; t < tenants; ++t) {
      for (const auto& q :
           pass_qgen.TenantQuerySet(t, 0, dataset->options.history_micros)) {
        const int64_t start = NowUs();
        auto r = (*engine)->Execute(q, dataset->map);
        if (!r.ok()) abort();
        pass_ms += (NowUs() - start) / 1000.0;
      }
    }
    (pass == 0 ? result.total_ms : result.repeat_ms) = pass_ms;
  }
  return result;
}

}  // namespace

int main() {
  const uint32_t kTenants = 25;
  DatasetOptions data_options;
  data_options.num_tenants = 100;
  data_options.total_rows = 300'000;

  printf("building local and OSS datasets...\n");
  Dataset local, oss1, oss2;
  BuildDataset(data_options, /*simulate_oss=*/false, &local);
  BuildDataset(data_options, /*simulate_oss=*/true, &oss1);
  BuildDataset(data_options, /*simulate_oss=*/true, &oss2);

  printf("running %u tenants x 6 queries per configuration...\n\n", kTenants);
  const auto local_result =
      RunConfig(&local, /*use_prefetch=*/false, /*use_cache=*/false, kTenants);
  const auto prefetch_result =
      RunConfig(&oss1, /*use_prefetch=*/true, /*use_cache=*/true, kTenants);
  const auto serial_result =
      RunConfig(&oss2, /*use_prefetch=*/false, /*use_cache=*/false, kTenants);

  printf("=== Figure 16: total query-set latency per configuration ===\n");
  printf("%-28s %-14s %-12s\n", "configuration", "cold (ms)", "vs local");
  printf("%-28s %-14.0f %-12.2f\n", "local storage", local_result.total_ms,
         1.0);
  printf("%-28s %-14.0f %-12.2f\n", "OSS + parallel prefetch(32)",
         prefetch_result.total_ms,
         prefetch_result.total_ms / local_result.total_ms);
  printf("%-28s %-14.0f %-12.2f\n", "OSS w/o parallel prefetch",
         serial_result.total_ms,
         serial_result.total_ms / local_result.total_ms);

  printf("\npaper shape: serial ~18.5x local, prefetch narrows to ~6x\n");
  printf("measured:    serial %.1fx local, prefetch %.1fx local "
         "(prefetch %.1fx faster than serial)\n",
         serial_result.total_ms / local_result.total_ms,
         prefetch_result.total_ms / local_result.total_ms,
         serial_result.total_ms / prefetch_result.total_ms);

  printf("\n=== multi-level cache: repeated query speedup ===\n");
  printf("first run %.0f ms, second (warm) run %.0f ms -> %.1fx faster "
         "(paper: ~6x)\n",
         prefetch_result.total_ms, prefetch_result.repeat_ms,
         prefetch_result.total_ms /
             std::max(1.0, prefetch_result.repeat_ms));
  return 0;
}
