// Figure 14: detailed per-shard and per-worker state at theta = 0.99.
//   (a) shard accesses per second, rank-ordered, before vs after max-flow
//   (b) worker accesses per second before balancing
//   (c) worker accesses and CPU utilization after balancing (paper: CPU of
//       all workers close to alpha = 85%)

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.h"
#include "cluster/traffic_sim.h"

using logstore::cluster::BalancePolicy;
using logstore::cluster::TrafficSimOptions;
using logstore::cluster::TrafficSimulator;

int main() {
  TrafficSimOptions options;
  options.num_workers = 24;
  options.shards_per_worker = 4;
  options.num_tenants = 1000;
  options.theta = 0.99;
  options.policy = BalancePolicy::kMaxFlow;

  TrafficSimulator sim(options);
  const auto before = sim.MeasureUnbalancedRound();
  const auto after = sim.Run(25, 10);

  auto sorted_desc = [](std::vector<int64_t> v) {
    std::sort(v.begin(), v.end(), std::greater<int64_t>());
    return v;
  };
  const auto shard_before = sorted_desc(before.shard_accesses);
  const auto shard_after = sorted_desc(after.shard_accesses);

  printf("=== Figure 14(a): shard accesses/s by rank, theta=0.99 ===\n");
  printf("%-8s %-16s %-16s\n", "rank", "before", "after");
  for (size_t rank = 0; rank < shard_before.size(); ++rank) {
    const bool print = rank < 10 || rank % 10 == 0 ||
                       rank == shard_before.size() - 1;
    if (print) {
      printf("%-8zu %-16lld %-16lld\n", rank + 1,
             static_cast<long long>(shard_before[rank]),
             static_cast<long long>(shard_after[rank]));
    }
  }
  printf("hottest shard reduced %.1fx (%lld -> %lld)\n\n",
         static_cast<double>(shard_before[0]) /
             std::max<int64_t>(1, shard_after[0]),
         static_cast<long long>(shard_before[0]),
         static_cast<long long>(shard_after[0]));

  printf("=== Figure 14(b): worker accesses/s before balancing ===\n");
  printf("%-8s %-16s %-12s\n", "worker", "accesses/s", "util");
  for (size_t w = 0; w < before.worker_accesses.size(); ++w) {
    printf("%-8zu %-16lld %-12.2f\n", w,
           static_cast<long long>(before.worker_accesses[w]),
           static_cast<double>(before.worker_accesses[w]) /
               static_cast<double>(options.worker_capacity));
  }

  printf("\n=== Figure 14(c): worker accesses/s and CPU after max-flow ===\n");
  printf("%-8s %-16s %-12s\n", "worker", "accesses/s", "cpu-util");
  double util_min = 1e9, util_max = 0;
  for (size_t w = 0; w < after.worker_accesses.size(); ++w) {
    printf("%-8zu %-16lld %-12.2f\n", w,
           static_cast<long long>(after.worker_accesses[w]),
           after.worker_utilization[w]);
    util_min = std::min(util_min, after.worker_utilization[w]);
    util_max = std::max(util_max, after.worker_utilization[w]);
  }
  printf("\nworker CPU utilization after balancing: %.2f .. %.2f "
         "(alpha watermark = %.2f)\n",
         util_min, util_max, options.alpha);

  using logstore::bench::JsonNum;
  std::string json = "{\n  \"bench\": \"fig14_detail_accesses\",\n";
  json += "  \"theta\": 0.99,\n";
  json += "  \"hottest_shard_before\": " +
          std::to_string(static_cast<long long>(shard_before[0])) + ",\n";
  json += "  \"hottest_shard_after\": " +
          std::to_string(static_cast<long long>(shard_after[0])) + ",\n";
  json += "  \"hottest_shard_reduction\": " +
          JsonNum(static_cast<double>(shard_before[0]) /
                  std::max<int64_t>(1, shard_after[0])) + ",\n";
  json += "  \"worker_util_min_after\": " + JsonNum(util_min) + ",\n";
  json += "  \"worker_util_max_after\": " + JsonNum(util_max) + ",\n";
  json += "  \"alpha\": " + JsonNum(options.alpha) + ",\n";
  json += "  \"worker_accesses_after\": [";
  for (size_t w = 0; w < after.worker_accesses.size(); ++w) {
    json += std::to_string(static_cast<long long>(after.worker_accesses[w]));
    if (w + 1 < after.worker_accesses.size()) json += ", ";
  }
  json += "]\n}";
  logstore::bench::WriteBenchJson("BENCH_fig14.json", json);
  return 0;
}
