// Scheduler micro-benchmarks: Dinic's max-flow runtime on LogStore-shaped
// flow networks, and the full greedy vs max-flow balancer passes. The
// controller reruns these every monitoring interval (300 s in production),
// so a pass must be cheap even with thousands of tenants.

#include <benchmark/benchmark.h>

#include <cmath>
#include <string>

#include "bench_json.h"
#include "common/clock.h"
#include "common/random.h"
#include "flow/balancer.h"
#include "flow/consistent_hash.h"
#include "flow/dinic.h"

namespace {

using namespace logstore;
using namespace logstore::flow;

ClusterState MakeState(int tenants, int workers, int shards_per_worker,
                       double theta_like_skew) {
  ClusterState state;
  Random rng(7);
  uint32_t shard_id = 0;
  for (int w = 0; w < workers; ++w) {
    state.workers.push_back({static_cast<uint32_t>(w), 1'000'000, 0});
    for (int s = 0; s < shards_per_worker; ++s) {
      state.shards.push_back({shard_id++, static_cast<uint32_t>(w), 400'000, 0});
    }
  }
  ConsistentHashRing ring;
  for (const auto& shard : state.shards) ring.AddNode(shard.id);

  // Zipf-ish tenant demands: tenant k gets base / (k+1)^skew.
  const double base = 200'000.0;
  for (int t = 0; t < tenants; ++t) {
    const int64_t traffic = static_cast<int64_t>(
        base / std::pow(static_cast<double>(t + 1), theta_like_skew) + 100);
    state.tenants.push_back({static_cast<uint64_t>(t), traffic});
    state.routes.Set(t, {{ring.GetNode(t), 1.0}});
  }
  std::vector<int64_t> shard_loads, worker_loads;
  ComputeLoads(state, state.routes, &shard_loads, &worker_loads);
  for (size_t j = 0; j < state.shards.size(); ++j) {
    state.shards[j].load = shard_loads[j];
  }
  for (size_t k = 0; k < state.workers.size(); ++k) {
    state.workers[k].load = worker_loads[k];
  }
  return state;
}

void BM_DinicSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  // Layered graph shaped like the traffic network: S -> n -> n -> T.
  DinicMaxFlow graph(2 * n + 2);
  Random rng(3);
  for (int i = 0; i < n; ++i) {
    graph.AddEdge(0, 1 + i, 1000 + static_cast<int64_t>(rng.Uniform(1000)));
    for (int j = 0; j < 4; ++j) {
      graph.AddEdge(1 + i, 1 + n + static_cast<int>(rng.Uniform(n)),
                    500 + static_cast<int64_t>(rng.Uniform(500)));
    }
  }
  for (int j = 0; j < n; ++j) {
    graph.AddEdge(1 + n + j, 2 * n + 1,
                  2000 + static_cast<int64_t>(rng.Uniform(1000)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.Solve(0, 2 * n + 1));
  }
}
BENCHMARK(BM_DinicSolve)->Arg(64)->Arg(256)->Arg(1024);

void BM_MaxFlowBalancerPass(benchmark::State& state) {
  ClusterState cluster =
      MakeState(static_cast<int>(state.range(0)), 24, 4, 0.99);
  MaxFlowBalancer balancer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(balancer.Schedule(cluster));
  }
  state.counters["routes"] =
      static_cast<double>(balancer.Schedule(cluster).routes.RouteCount());
}
BENCHMARK(BM_MaxFlowBalancerPass)->Arg(100)->Arg(1000)->Arg(5000);

void BM_GreedyBalancerPass(benchmark::State& state) {
  ClusterState cluster =
      MakeState(static_cast<int>(state.range(0)), 24, 4, 0.99);
  GreedyBalancer balancer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(balancer.Schedule(cluster));
  }
  state.counters["routes"] =
      static_cast<double>(balancer.Schedule(cluster).routes.RouteCount());
}
BENCHMARK(BM_GreedyBalancerPass)->Arg(100)->Arg(1000)->Arg(5000);

// A balancer pass must stay cheap relative to the 300 s monitoring
// interval; the committed JSON records the per-pass cost at the paper's
// 1000-tenant scale so regressions show up in review.
template <typename Balancer>
double TimedPassMs(const ClusterState& cluster, size_t* routes) {
  Balancer balancer;
  const int kIters = 20;
  const int64_t start = SystemClock::Default()->NowMicros();
  for (int i = 0; i < kIters; ++i) {
    benchmark::DoNotOptimize(balancer.Schedule(cluster));
  }
  const int64_t elapsed = SystemClock::Default()->NowMicros() - start;
  *routes = balancer.Schedule(cluster).routes.RouteCount();
  return static_cast<double>(elapsed) / 1000.0 / kIters;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const logstore::flow::ClusterState cluster = MakeState(1000, 24, 4, 0.99);
  size_t maxflow_routes = 0, greedy_routes = 0;
  const double maxflow_ms =
      TimedPassMs<logstore::flow::MaxFlowBalancer>(cluster, &maxflow_routes);
  const double greedy_ms =
      TimedPassMs<logstore::flow::GreedyBalancer>(cluster, &greedy_routes);

  using logstore::bench::JsonNum;
  std::string json = "{\n  \"bench\": \"maxflow\",\n";
  json += "  \"tenants\": 1000,\n  \"workers\": 24,\n";
  json += "  \"maxflow_pass_ms\": " + JsonNum(maxflow_ms) + ",\n";
  json += "  \"greedy_pass_ms\": " + JsonNum(greedy_ms) + ",\n";
  json += "  \"maxflow_routes\": " + std::to_string(maxflow_routes) + ",\n";
  json += "  \"greedy_routes\": " + std::to_string(greedy_routes) + "\n}";
  logstore::bench::WriteBenchJson("BENCH_maxflow.json", json);
  return 0;
}
