#ifndef LOGSTORE_BENCH_BENCH_JSON_H_
#define LOGSTORE_BENCH_BENCH_JSON_H_

// JSON emission shared by every figure bench. Each bench writes a compact
// machine-readable BENCH_<fig>.json next to its stdout table; WriteBenchJson
// also dumps the process-wide metric registry to a BENCH_<fig>.metrics.json
// companion, so every committed perf number carries the counters (IO,
// cache, prefetch, query) that produced it.
//
// This header is deliberately light (no dataset/engine includes) so the
// traffic-simulator and scheduler benches can use it too.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/metrics.h"

namespace logstore::bench {

// BENCH_SMOKE=1 shrinks the dataset and thread sweep so CI can run the
// figure benches as a fast regression smoke instead of a full measurement.
inline bool BenchSmoke() {
  const char* v = std::getenv("BENCH_SMOKE");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

// Minimal number formatter for the JSON emitters (2 decimal places).
inline std::string JsonNum(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

inline void WriteJsonFile(const std::string& path, const std::string& body) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

// The machine-readable companion to each figure's stdout table, plus the
// metric-registry dump alongside it (<stem>.metrics.json).
inline void WriteBenchJson(const std::string& path, const std::string& json) {
  std::printf("\n");
  WriteJsonFile(path, json);
  std::string metrics_path = path;
  const size_t suffix = metrics_path.rfind(".json");
  if (suffix != std::string::npos) metrics_path.erase(suffix);
  metrics_path += ".metrics.json";
  WriteJsonFile(metrics_path, metrics::MetricRegistry::Default()->ToJson());
}

}  // namespace logstore::bench

#endif  // LOGSTORE_BENCH_BENCH_JSON_H_
