// Figure 17: effect of all query optimizations combined, as a latency CDF
// over a mixed online-retrieval workload.
//
// "Before": no data skipping, no caches, no prefetch — every query scans
// its blocks serially from OSS. "After": the full §5 stack.
//
// Expected shape (paper): before, >50% of queries take over 10 s and ~1%
// over 30 s; after, 75% return within 100 ms, 90% within 1 s, 99% within
// 2 s. Absolute values differ on the simulated substrate; the orders of
// magnitude between the two CDFs are the target.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "query_bench_common.h"

using namespace logstore;
using namespace logstore::bench;

namespace {

std::vector<double> RunWorkload(Dataset* dataset, bool optimized,
                                uint32_t tenants) {
  query::EngineOptions options;
  options.use_data_skipping = optimized;
  options.use_cache = optimized;
  options.use_prefetch = optimized;
  options.prefetch_threads = 32;
  options.io_block_size = 8 * 1024;
  options.cache_options.memory_capacity_bytes = 512ull << 20;
  options.cache_options.ssd_dir.clear();
  auto engine = query::QueryEngine::Open(dataset->store.get(), options);
  if (!engine.ok()) abort();

  std::vector<double> latencies_ms;
  workload::QueryGenerator qgen(9);
  for (uint32_t t = 0; t < tenants; ++t) {
    for (const auto& q :
         qgen.TenantQuerySet(t, 0, dataset->options.history_micros)) {
      const int64_t start = NowUs();
      auto r = (*engine)->Execute(q, dataset->map);
      if (!r.ok()) abort();
      latencies_ms.push_back((NowUs() - start) / 1000.0);
    }
  }
  std::sort(latencies_ms.begin(), latencies_ms.end());
  return latencies_ms;
}

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const size_t idx = static_cast<size_t>(p * (sorted.size() - 1));
  return sorted[idx];
}

double FractionUnder(const std::vector<double>& sorted, double ms) {
  const auto it = std::upper_bound(sorted.begin(), sorted.end(), ms);
  return static_cast<double>(it - sorted.begin()) /
         static_cast<double>(sorted.size());
}

}  // namespace

int main() {
  const uint32_t kTenants = 30;
  DatasetOptions data_options;
  data_options.num_tenants = 100;
  data_options.total_rows = 300'000;

  printf("building dataset on simulated OSS...\n");
  Dataset before_data, after_data;
  BuildDataset(data_options, /*simulate_oss=*/true, &before_data);
  BuildDataset(data_options, /*simulate_oss=*/true, &after_data);

  printf("running %u tenants x 6 queries per configuration...\n\n", kTenants);
  const auto before = RunWorkload(&before_data, /*optimized=*/false, kTenants);
  const auto after = RunWorkload(&after_data, /*optimized=*/true, kTenants);

  printf("=== Figure 17: query latency CDF, before vs after optimizations "
         "===\n");
  printf("%-12s %-14s %-14s\n", "percentile", "before (ms)", "after (ms)");
  for (double p : {0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.00}) {
    printf("p%-11.0f %-14.1f %-14.1f\n", p * 100, Percentile(before, p),
           Percentile(after, p));
  }

  printf("\nfraction of queries returning within a budget:\n");
  printf("%-12s %-10s %-10s\n", "budget", "before", "after");
  for (double ms : {10.0, 50.0, 100.0, 500.0, 1000.0, 2000.0}) {
    printf("%-12.0f %-10.2f %-10.2f\n", ms, FractionUnder(before, ms),
           FractionUnder(after, ms));
  }

  double before_total = 0, after_total = 0;
  for (double v : before) before_total += v;
  for (double v : after) after_total += v;
  printf("\nmean latency: %.1f ms before vs %.1f ms after (%.1fx)\n",
         before_total / before.size(), after_total / after.size(),
         before_total / std::max(1.0, after_total));
  return 0;
}
