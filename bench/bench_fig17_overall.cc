// Figure 17: effect of all query optimizations combined, as a latency CDF
// over a mixed online-retrieval workload.
//
// "Before": no data skipping, no caches, no prefetch, serial block scans —
// every query reads its blocks one at a time from OSS. "After": the full
// §5 stack including parallel LogBlock execution (query_threads=8).
//
// A second section sweeps query_threads over cold-cache multi-block scans
// (the queries parallel execution actually accelerates), a third compares
// the scatter/gather cluster read path (§12: fragments executed on the
// worker engines owning the LogBlocks) against the single-broker-engine
// path over the same deployment, and everything is emitted to
// BENCH_fig17.json.
//
// Expected shape (paper): before, >50% of queries take over 10 s and ~1%
// over 30 s; after, 75% return within 100 ms, 90% within 1 s, 99% within
// 2 s. Absolute values differ on the simulated substrate; the orders of
// magnitude between the two CDFs are the target.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "query_bench_common.h"

using namespace logstore;
using namespace logstore::bench;

namespace {

std::vector<double> RunWorkload(Dataset* dataset, bool optimized,
                                uint32_t tenants, int query_threads) {
  query::EngineOptions options;
  options.use_data_skipping = optimized;
  options.use_cache = optimized;
  options.use_prefetch = optimized;
  options.query_threads = query_threads;
  options.prefetch_threads = 32;
  options.io_block_size = 8 * 1024;
  options.cache_options.memory_capacity_bytes = 512ull << 20;
  options.cache_options.ssd_dir.clear();
  auto engine = query::QueryEngine::Open(dataset->store.get(), options);
  if (!engine.ok()) abort();

  std::vector<double> latencies_ms;
  workload::QueryGenerator qgen(9);
  for (uint32_t t = 0; t < tenants; ++t) {
    for (const auto& q :
         qgen.TenantQuerySet(t, 0, dataset->options.history_micros)) {
      const int64_t start = NowUs();
      auto r = (*engine)->Execute(q, dataset->map);
      if (!r.ok()) abort();
      latencies_ms.push_back((NowUs() - start) / 1000.0);
    }
  }
  std::sort(latencies_ms.begin(), latencies_ms.end());
  return latencies_ms;
}

struct SweepPoint {
  int threads;
  double cold_ms = 0;
  double warm_ms = 0;
};

// Full-history scans of every tenant with >= 4 LogBlocks: the multi-block
// workload that parallel execution targets. Fresh engine per call, so the
// first pass is cold-cache.
SweepPoint RunMultiBlockScans(Dataset* dataset,
                              const std::vector<uint64_t>& tenants,
                              int query_threads) {
  query::EngineOptions options;
  options.query_threads = query_threads;
  options.prefetch_threads = 32;
  options.io_block_size = 8 * 1024;
  options.cache_options.memory_capacity_bytes = 512ull << 20;
  options.cache_options.ssd_dir.clear();
  auto engine = query::QueryEngine::Open(dataset->store.get(), options);
  if (!engine.ok()) abort();

  SweepPoint point{query_threads};
  for (int pass = 0; pass < 2; ++pass) {
    double pass_ms = 0;
    for (uint64_t tenant : tenants) {
      query::LogQuery q;
      q.tenant_id = tenant;
      q.ts_min = 0;
      q.ts_max = dataset->options.history_micros;
      q.select_columns = {"ts", "latency"};
      const int64_t start = NowUs();
      auto r = (*engine)->Execute(q, dataset->map);
      if (!r.ok()) abort();
      pass_ms += (NowUs() - start) / 1000.0;
    }
    (pass == 0 ? point.cold_ms : point.warm_ms) = pass_ms;
  }
  return point;
}

struct ScatterSweep {
  uint32_t tenants = 0;
  double single_cold_ms = 0;
  double single_warm_ms = 0;
  double scatter_cold_ms = 0;
  double scatter_warm_ms = 0;
};

// Scatter/gather cluster reads vs the single-broker-engine path, over one
// 4-worker deployment on simulated OSS. Every tenant spans several
// LogBlocks across the workers' shards, so the scatter has real fan-out;
// both paths return byte-identical results (the §12 contract), so the
// comparison is purely about where the block scans execute. Cold passes
// follow a full cache clear (broker and workers).
ScatterSweep RunScatterSweep(bool smoke) {
  auto base = std::make_unique<objectstore::MemoryObjectStore>();
  auto store = std::make_unique<objectstore::SimulatedObjectStore>(
      std::move(base), OssLatency());

  cluster::ClusterDeploymentOptions options;
  options.num_workers = 4;
  options.shards_per_worker = 2;
  options.worker.schema = logblock::RequestLogSchema();
  options.worker.builder.max_rows_per_logblock = smoke ? 1000 : 4000;
  options.engine.query_threads = 8;
  options.engine.prefetch_threads = 32;
  options.engine.io_block_size = 8 * 1024;
  options.engine.cache_options.memory_capacity_bytes = 512ull << 20;
  options.engine.cache_options.ssd_dir.clear();
  auto cluster = cluster::Cluster::Open(store.get(), options);
  if (!cluster.ok()) abort();

  ScatterSweep sweep;
  sweep.tenants = smoke ? 6 : 12;
  const int writes_per_tenant = smoke ? 8 : 20;
  const int rows_per_write = smoke ? 400 : 1000;
  const int64_t history = 48ll * 3600 * 1'000'000;
  workload::LogGenerator gen(41);
  for (uint32_t t = 0; t < sweep.tenants; ++t) {
    for (int i = 0; i < writes_per_tenant; ++i) {
      const int64_t begin = history * i / writes_per_tenant;
      const int64_t end = history * (i + 1) / writes_per_tenant;
      if (!(*cluster)->Write(t, gen.Generate(t, rows_per_write, begin, end))
               .ok()) {
        abort();
      }
    }
  }
  auto built = (*cluster)->RunBuildPass();
  if (!built.ok() || *built == 0) abort();

  auto run_pass = [&](bool scatter) {
    double pass_ms = 0;
    for (uint32_t t = 0; t < sweep.tenants; ++t) {
      query::LogQuery q;
      q.tenant_id = t;
      q.ts_min = 0;
      q.ts_max = history;
      q.select_columns = {"ts", "latency"};
      const int64_t start = NowUs();
      auto r = scatter ? (*cluster)->Query(q) : (*cluster)->QuerySingleEngine(q);
      if (!r.ok()) abort();
      pass_ms += (NowUs() - start) / 1000.0;
    }
    return pass_ms;
  };
  (*cluster)->ClearQueryCaches();
  sweep.single_cold_ms = run_pass(false);
  sweep.single_warm_ms = run_pass(false);
  (*cluster)->ClearQueryCaches();
  sweep.scatter_cold_ms = run_pass(true);
  sweep.scatter_warm_ms = run_pass(true);
  return sweep;
}

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const size_t idx = static_cast<size_t>(p * (sorted.size() - 1));
  return sorted[idx];
}

double FractionUnder(const std::vector<double>& sorted, double ms) {
  const auto it = std::upper_bound(sorted.begin(), sorted.end(), ms);
  return static_cast<double>(it - sorted.begin()) /
         static_cast<double>(sorted.size());
}

}  // namespace

int main() {
  const bool smoke = BenchSmoke();
  const uint32_t kTenants = smoke ? 8 : 30;
  const std::vector<int> kThreadSweep =
      smoke ? std::vector<int>{1, 8} : std::vector<int>{1, 2, 4, 8, 16};
  DatasetOptions data_options;
  data_options.num_tenants = 100;
  data_options.total_rows = smoke ? 60'000 : 300'000;

  printf("building dataset on simulated OSS...%s\n", smoke ? " (smoke)" : "");
  Dataset before_data, after_data;
  BuildDataset(data_options, /*simulate_oss=*/true, &before_data);
  BuildDataset(data_options, /*simulate_oss=*/true, &after_data);

  printf("running %u tenants x 6 queries per configuration...\n\n", kTenants);
  const auto before =
      RunWorkload(&before_data, /*optimized=*/false, kTenants, 1);
  const auto after = RunWorkload(&after_data, /*optimized=*/true, kTenants, 8);

  printf("=== Figure 17: query latency CDF, before vs after optimizations "
         "===\n");
  printf("%-12s %-14s %-14s\n", "percentile", "before (ms)", "after (ms)");
  for (double p : {0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.00}) {
    printf("p%-11.0f %-14.1f %-14.1f\n", p * 100, Percentile(before, p),
           Percentile(after, p));
  }

  printf("\nfraction of queries returning within a budget:\n");
  printf("%-12s %-10s %-10s\n", "budget", "before", "after");
  for (double ms : {10.0, 50.0, 100.0, 500.0, 1000.0, 2000.0}) {
    printf("%-12.0f %-10.2f %-10.2f\n", ms, FractionUnder(before, ms),
           FractionUnder(after, ms));
  }

  double before_total = 0, after_total = 0;
  for (double v : before) before_total += v;
  for (double v : after) after_total += v;
  printf("\nmean latency: %.1f ms before vs %.1f ms after (%.1fx)\n",
         before_total / before.size(), after_total / after.size(),
         before_total / std::max(1.0, after_total));

  // Parallel-execution sweep over cold multi-block scans.
  std::vector<uint64_t> wide_tenants;
  for (uint32_t t = 0; t < data_options.num_tenants; ++t) {
    if (after_data.map.TenantBlocks(t).size() >= 4) wide_tenants.push_back(t);
  }
  printf("\n=== query_threads sweep: cold full scans of %zu multi-block "
         "tenants ===\n",
         wide_tenants.size());
  printf("%-14s %-14s %-14s %-10s\n", "query_threads", "cold (ms)",
         "warm (ms)", "vs 1thr");
  std::vector<SweepPoint> sweep;
  for (int threads : kThreadSweep) {
    sweep.push_back(RunMultiBlockScans(&after_data, wide_tenants, threads));
    printf("%-14d %-14.0f %-14.0f %-10.2f\n", threads, sweep.back().cold_ms,
           sweep.back().warm_ms,
           sweep.front().cold_ms / std::max(1.0, sweep.back().cold_ms));
  }

  printf("\n=== scatter/gather cluster reads vs single broker engine ===\n");
  const ScatterSweep scatter = RunScatterSweep(smoke);
  printf("%-22s %-14s %-14s\n", "path", "cold (ms)", "warm (ms)");
  printf("%-22s %-14.0f %-14.0f\n", "single-engine", scatter.single_cold_ms,
         scatter.single_warm_ms);
  printf("%-22s %-14.0f %-14.0f\n", "scatter (4 workers)",
         scatter.scatter_cold_ms, scatter.scatter_warm_ms);
  printf("cold scatter speedup: %.2fx over %u tenants\n",
         scatter.single_cold_ms / std::max(1.0, scatter.scatter_cold_ms),
         scatter.tenants);

  std::string json = "{\n  \"bench\": \"fig17_overall\",\n";
  json += "  \"smoke\": " + std::string(smoke ? "true" : "false") + ",\n";
  json += "  \"tenants\": " + std::to_string(kTenants) + ",\n";
  auto cdf_json = [&](const char* name, const std::vector<double>& sorted,
                      double total) {
    std::string s = "  \"" + std::string(name) + "\": {";
    s += "\"p50_ms\": " + JsonNum(Percentile(sorted, 0.50));
    s += ", \"p90_ms\": " + JsonNum(Percentile(sorted, 0.90));
    s += ", \"p99_ms\": " + JsonNum(Percentile(sorted, 0.99));
    s += ", \"max_ms\": " + JsonNum(Percentile(sorted, 1.00));
    s += ", \"mean_ms\": " +
         JsonNum(total / static_cast<double>(sorted.size()));
    s += "}";
    return s;
  };
  json += cdf_json("before", before, before_total) + ",\n";
  json += cdf_json("after", after, after_total) + ",\n";
  json += "  \"multi_block_tenants\": " +
          std::to_string(wide_tenants.size()) + ",\n";
  json += "  \"threads_sweep\": [\n";
  for (size_t i = 0; i < sweep.size(); ++i) {
    json += "    {\"query_threads\": " + std::to_string(sweep[i].threads) +
            ", \"cold_ms\": " + JsonNum(sweep[i].cold_ms) +
            ", \"warm_ms\": " + JsonNum(sweep[i].warm_ms) +
            ", \"cold_speedup_vs_1\": " +
            JsonNum(sweep.front().cold_ms / std::max(1.0, sweep[i].cold_ms)) +
            "}";
    json += (i + 1 < sweep.size()) ? ",\n" : "\n";
  }
  json += "  ],\n";
  json += "  \"scatter_vs_single\": {";
  json += "\"tenants\": " + std::to_string(scatter.tenants);
  json += ", \"single_cold_ms\": " + JsonNum(scatter.single_cold_ms);
  json += ", \"single_warm_ms\": " + JsonNum(scatter.single_warm_ms);
  json += ", \"scatter_cold_ms\": " + JsonNum(scatter.scatter_cold_ms);
  json += ", \"scatter_warm_ms\": " + JsonNum(scatter.scatter_warm_ms);
  json += ", \"cold_speedup\": " +
          JsonNum(scatter.single_cold_ms /
                  std::max(1.0, scatter.scatter_cold_ms));
  json += "}\n}";
  WriteBenchJson("BENCH_fig17.json", json);
  return 0;
}
