// Codec micro-benchmarks supporting the §3.2 "Compressed" design choice:
// the ratio-oriented codec costs more CPU but compresses better, which is
// the right trade when data ships to (and is billed by) object storage.

#include <benchmark/benchmark.h>

#include <string>

#include "common/random.h"
#include "compress/codec.h"

namespace {

using logstore::Random;
using logstore::compress::Codec;
using logstore::compress::CodecType;
using logstore::compress::GetCodec;

std::string MakeLogPayload(size_t approx_bytes) {
  Random rng(42);
  std::string payload;
  while (payload.size() < approx_bytes) {
    payload += "2020-11-11 0" + std::to_string(rng.Uniform(10)) +
               ":00:00 GET /api/v1/instances/" +
               std::to_string(rng.Uniform(100)) +
               " status=200 latency=" + std::to_string(rng.Uniform(500)) +
               "ms tenant=" + std::to_string(rng.Uniform(64)) + "\n";
  }
  return payload;
}

void BM_Compress(benchmark::State& state, CodecType type) {
  const Codec* codec = GetCodec(type);
  const std::string payload = MakeLogPayload(256 * 1024);
  size_t compressed_size = 0;
  for (auto _ : state) {
    std::string out;
    benchmark::DoNotOptimize(codec->Compress(payload, &out));
    compressed_size = out.size();
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(payload.size()));
  state.counters["ratio"] =
      static_cast<double>(payload.size()) /
      static_cast<double>(compressed_size == 0 ? 1 : compressed_size);
}

void BM_Decompress(benchmark::State& state, CodecType type) {
  const Codec* codec = GetCodec(type);
  const std::string payload = MakeLogPayload(256 * 1024);
  std::string compressed;
  (void)codec->Compress(payload, &compressed);
  for (auto _ : state) {
    std::string out;
    benchmark::DoNotOptimize(codec->Decompress(compressed, &out));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(payload.size()));
}

BENCHMARK_CAPTURE(BM_Compress, none, CodecType::kNone);
BENCHMARK_CAPTURE(BM_Compress, lz_fast, CodecType::kLzFast);
BENCHMARK_CAPTURE(BM_Compress, lz_ratio, CodecType::kLzRatio);
BENCHMARK_CAPTURE(BM_Decompress, lz_fast, CodecType::kLzFast);
BENCHMARK_CAPTURE(BM_Decompress, lz_ratio, CodecType::kLzRatio);

}  // namespace

BENCHMARK_MAIN();
