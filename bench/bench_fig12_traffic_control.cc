// Figure 12: system performance under the three balancing policies as the
// skew factor grows.
//   (a) write throughput vs theta
//   (b) batch (1000-entry) write latency vs theta
//   (c) number of routing rules added vs theta (greedy vs max-flow)
//
// Expected shape (paper): without flow control, throughput collapses and
// latency explodes as theta -> 0.99; greedy and max-flow both hold
// throughput near the offered load, with max-flow at lower latency and
// fewer added routes.

#include <cstdio>
#include <string>

#include "bench_json.h"
#include "cluster/traffic_sim.h"

using logstore::cluster::BalancePolicy;
using logstore::cluster::TrafficSimOptions;
using logstore::cluster::TrafficSimulator;

int main() {
  const double kThetas[] = {0.0, 0.2, 0.4, 0.6, 0.8, 0.99};
  const BalancePolicy kPolicies[] = {
      BalancePolicy::kNone, BalancePolicy::kGreedy, BalancePolicy::kMaxFlow};
  const char* kPolicyNames[] = {"no-control", "greedy", "max-flow"};

  struct Cell {
    double throughput, latency;
    size_t routes;
  };
  Cell results[3][6] = {};

  for (int p = 0; p < 3; ++p) {
    for (int t = 0; t < 6; ++t) {
      TrafficSimOptions options;
      options.num_workers = 24;  // the paper's 24 worker nodes
      options.shards_per_worker = 4;
      options.num_tenants = 1000;
      options.theta = kThetas[t];
      options.policy = kPolicies[p];
      TrafficSimulator sim(options);
      const auto metrics = sim.Run(/*warmup_rounds=*/25, /*measure_rounds=*/10);
      results[p][t] = {metrics.throughput, metrics.avg_latency_ms,
                       metrics.route_count - options.num_tenants};
    }
  }

  printf("=== Figure 12(a): write throughput (entries/s) vs skew ===\n");
  printf("%-12s", "policy");
  for (double theta : kThetas) printf("  theta=%-6.2f", theta);
  printf("\n");
  for (int p = 0; p < 3; ++p) {
    printf("%-12s", kPolicyNames[p]);
    for (int t = 0; t < 6; ++t) printf("  %-12.0f", results[p][t].throughput);
    printf("\n");
  }

  printf("\n=== Figure 12(b): batch write latency (ms) vs skew ===\n");
  printf("%-12s", "policy");
  for (double theta : kThetas) printf("  theta=%-6.2f", theta);
  printf("\n");
  for (int p = 0; p < 3; ++p) {
    printf("%-12s", kPolicyNames[p]);
    for (int t = 0; t < 6; ++t) printf("  %-12.1f", results[p][t].latency);
    printf("\n");
  }

  printf("\n=== Figure 12(c): routing rules added vs skew ===\n");
  printf("%-12s", "policy");
  for (double theta : kThetas) printf("  theta=%-6.2f", theta);
  printf("\n");
  for (int p = 1; p < 3; ++p) {  // no-control never adds routes
    printf("%-12s", kPolicyNames[p]);
    for (int t = 0; t < 6; ++t) printf("  %-12zu", results[p][t].routes);
    printf("\n");
  }

  printf("\nsummary at theta=0.99: throughput no-control/max-flow = %.2fx, "
         "greedy/max-flow = %.2fx; routes added: max-flow %zu vs greedy %zu\n",
         results[0][5].throughput / results[2][5].throughput,
         results[1][5].throughput / results[2][5].throughput,
         results[2][5].routes, results[1][5].routes);

  using logstore::bench::JsonNum;
  std::string json = "{\n  \"bench\": \"fig12_traffic_control\",\n";
  json += "  \"policies\": {\n";
  for (int p = 0; p < 3; ++p) {
    json += "    \"" + std::string(kPolicyNames[p]) + "\": [\n";
    for (int t = 0; t < 6; ++t) {
      json += "      {\"theta\": " + JsonNum(kThetas[t]) +
              ", \"throughput\": " + JsonNum(results[p][t].throughput) +
              ", \"latency_ms\": " + JsonNum(results[p][t].latency) +
              ", \"routes_added\": " + std::to_string(results[p][t].routes) +
              "}";
      json += (t + 1 < 6) ? ",\n" : "\n";
    }
    json += (p + 1 < 3) ? "    ],\n" : "    ]\n";
  }
  json += "  },\n";
  json += "  \"theta099_throughput_nocontrol_vs_maxflow\": " +
          JsonNum(results[0][5].throughput / results[2][5].throughput) + "\n}";
  logstore::bench::WriteBenchJson("BENCH_fig12.json", json);
  return 0;
}
