// Figure 15: impact of the data-skipping strategy on query latency.
//
// Dataset: Zipfian tenants (theta = 0.99) archived as LogBlocks on a
// simulated OSS; query set: six templated queries per tenant (§6.3). Each
// query runs cold-cache, with data skipping enabled vs disabled.
//
// Expected shape (paper): average latency improves ~1.7x with skipping; the
// largest tenant improves most (~2.6x); tiny tenants see little change
// because index-load overhead offsets the skipped scans.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "query_bench_common.h"

using namespace logstore;
using namespace logstore::bench;

int main() {
  const bool smoke = BenchSmoke();
  DatasetOptions data_options;
  data_options.total_rows = smoke ? 200'000
                                  : 2'000'000;  // larger head tenants:
                                                // skipping is a big-tenant
                                                // optimization
  Dataset dataset;
  BuildDataset(data_options, /*simulate_oss=*/true, &dataset);
  const uint32_t kDisplayTenants = smoke ? 8 : 20;  // "top 100 of 1000"

  auto run_config = [&](bool skipping) {
    query::EngineOptions options;
    options.use_data_skipping = skipping;
    options.use_cache = true;
    options.use_prefetch = true;
    options.prefetch_threads = 32;
    options.io_block_size = 8 * 1024;
    options.cache_options.memory_capacity_bytes = 256ull << 20;
    options.cache_options.ssd_dir.clear();
    auto engine = query::QueryEngine::Open(dataset.store.get(), options);
    if (!engine.ok()) abort();

    workload::QueryGenerator qgen(5);
    std::vector<double> per_tenant_ms(kDisplayTenants, 0);
    for (uint32_t t = 0; t < kDisplayTenants; ++t) {
      const auto queries =
          qgen.TenantQuerySet(t, 0, dataset.options.history_micros);
      double total_ms = 0;
      for (const auto& q : queries) {
        (*engine)->ClearCaches();  // cold: isolate the skipping effect
        const int64_t start = NowUs();
        auto result = (*engine)->Execute(q, dataset.map);
        if (!result.ok()) {
          fprintf(stderr, "query failed: %s\n",
                  result.status().ToString().c_str());
          abort();
        }
        total_ms += (NowUs() - start) / 1000.0;
      }
      per_tenant_ms[t] = total_ms / queries.size();
    }
    return per_tenant_ms;
  };

  printf("building done (%zu LogBlocks); running %u tenants x 6 queries x 2 "
         "configs...\n",
         dataset.map.TotalBlocks(), kDisplayTenants);
  const auto with_skipping = run_config(true);
  const auto without_skipping = run_config(false);

  printf("\n=== Figure 15: avg query latency per tenant (ms), cold cache "
         "===\n");
  printf("%-8s %-12s %-16s %-16s %-8s\n", "tenant", "rows", "with-skipping",
         "w/o-skipping", "speedup");
  for (uint32_t t = 0; t < kDisplayTenants; ++t) {
    if (t < 10 || t % 5 == 0) {
      uint64_t rows = 0;
      for (const auto& b : dataset.map.TenantBlocks(t)) rows += b.row_count;
      printf("%-8u %-12llu %-16.1f %-16.1f %-8.2f\n", t,
             static_cast<unsigned long long>(rows), with_skipping[t],
             without_skipping[t], without_skipping[t] / with_skipping[t]);
    }
  }

  double avg_with = 0, avg_without = 0, best_speedup = 0;
  for (uint32_t t = 0; t < kDisplayTenants; ++t) {
    avg_with += with_skipping[t];
    avg_without += without_skipping[t];
    best_speedup =
        std::max(best_speedup, without_skipping[t] / with_skipping[t]);
  }
  printf("\naverage latency: %.1f ms with skipping vs %.1f ms without "
         "(%.2fx improvement; paper reports ~1.7x)\n",
         avg_with / kDisplayTenants, avg_without / kDisplayTenants,
         avg_without / avg_with);
  printf("largest per-tenant improvement: %.2fx (paper: ~2.6x for the "
         "largest tenant)\n",
         best_speedup);

  std::string json = "{\n  \"bench\": \"fig15_data_skipping\",\n";
  json += "  \"smoke\": " + std::string(smoke ? "true" : "false") + ",\n";
  json += "  \"tenants\": " + std::to_string(kDisplayTenants) + ",\n";
  json += "  \"avg_with_skipping_ms\": " +
          JsonNum(avg_with / kDisplayTenants) + ",\n";
  json += "  \"avg_without_skipping_ms\": " +
          JsonNum(avg_without / kDisplayTenants) + ",\n";
  json += "  \"avg_improvement\": " + JsonNum(avg_without / avg_with) + ",\n";
  json += "  \"best_tenant_improvement\": " + JsonNum(best_speedup) + ",\n";
  json += "  \"per_tenant\": [\n";
  for (uint32_t t = 0; t < kDisplayTenants; ++t) {
    json += "    {\"tenant\": " + std::to_string(t) +
            ", \"with_ms\": " + JsonNum(with_skipping[t]) +
            ", \"without_ms\": " + JsonNum(without_skipping[t]) + "}";
    json += (t + 1 < kDisplayTenants) ? ",\n" : "\n";
  }
  json += "  ]\n}";
  WriteBenchJson("BENCH_fig15.json", json);
  return 0;
}
