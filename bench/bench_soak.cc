// Soak-availability emitter: a miniature version of the soak harness
// (tests/soak_test.cc) that runs continuous Zipfian write load against a
// durable replicated deployment with the live monitor on, injects the
// chaos rungs (replica wedge, process kill, object-store brownout,
// rejoin), buckets every write attempt by wall clock, and commits the
// resulting availability profile:
//
//   BENCH_soak.json          — per-bucket attempts/successes/rate with
//                              fault-window annotations, plus the
//                              aggregate availability inside and outside
//                              the injected fault windows
//   BENCH_soak.metrics.json  — the default metric registry, including the
//                              cluster.availability.* cells the buckets
//                              are sampled against
//
// The committed numbers are the §13 acceptance artifact: availability
// outside injected fault windows must stay >= 99% (Taurus-style floor);
// the process exits non-zero if it does not, so CI gates on it.
//
// SOAK_SECONDS / SOAK_BUCKET_MS / SOAK_WORKERS resize the run;
// BENCH_SMOKE=1 shrinks it to a fast regression smoke.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "cluster/cluster.h"
#include "common/clock.h"
#include "common/metrics.h"
#include "common/random.h"
#include "consensus/durable_log.h"
#include "logblock/row_batch.h"
#include "logblock/schema.h"
#include "objectstore/fault_injecting_object_store.h"
#include "objectstore/memory_object_store.h"
#include "workload/zipfian.h"

namespace {

using namespace logstore;
using logstore::bench::BenchSmoke;
using logstore::bench::JsonNum;

int EnvInt(const char* name, int fallback) {
  const char* env = std::getenv(name);
  if (env != nullptr && *env != '\0') return std::atoi(env);
  return fallback;
}

logblock::RowBatch OneRow(uint64_t tenant, int64_t ts) {
  logblock::RowBatch batch(logblock::RequestLogSchema());
  batch.AddRow({logblock::Value::Int64(static_cast<int64_t>(tenant)),
                logblock::Value::Int64(ts),
                logblock::Value::String("10.0.0.1"),
                logblock::Value::Int64(5), logblock::Value::String("false"),
                logblock::Value::String("soak")});
  return batch;
}

struct Bucket {
  int64_t attempts = 0;
  int64_t successes = 0;
};

struct Window {
  int64_t start_ms = 0;
  int64_t end_ms = -1;
  const char* kind = "";
};

}  // namespace

int main() {
  const int soak_seconds = BenchSmoke() ? 2 : EnvInt("SOAK_SECONDS", 8);
  const int64_t bucket_ms = std::max(10, EnvInt("SOAK_BUCKET_MS", 100));
  const uint32_t num_workers =
      static_cast<uint32_t>(EnvInt("SOAK_WORKERS", 6));
  const uint64_t num_tenants = 8;
  const uint64_t seed = 4242;
  const int64_t duration_ms = static_cast<int64_t>(soak_seconds) * 1000;

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "bench_soak_wal";
  std::filesystem::remove_all(dir);

  // Default registry, so WriteBenchJson's metrics dump carries the
  // cluster.availability.* cells alongside every other layer's counters.
  objectstore::MemoryObjectStore base_store;
  objectstore::FaultInjectionOptions fault;
  fault.seed = seed;
  objectstore::FaultInjectingObjectStore store(&base_store, fault);

  cluster::ClusterDeploymentOptions options;
  options.num_workers = num_workers;
  options.shards_per_worker = 2;
  options.worker.schema = logblock::RequestLogSchema();
  options.worker.replicated = true;
  options.worker.wal_dir = dir.string();
  options.worker.wal.sync_policy = consensus::SyncPolicy::kOnSync;
  options.worker.wal.segment_target_bytes = 512;
  // Short object-store retry budgets: a brownout must surface as
  // kUnavailable inside its window, not stall the load loop for the
  // default 5 s call deadline.
  for (objectstore::RetryOptions* retry :
       {&options.engine.retry_options, &options.worker.builder.retry_options}) {
    retry->max_attempts = 2;
    retry->initial_backoff_us = 5'000;
    retry->max_backoff_us = 20'000;
    retry->call_deadline_us = 100'000;
  }
  auto opened = cluster::Cluster::Open(&store, options);
  if (!opened.ok()) {
    std::fprintf(stderr, "cluster open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<cluster::Cluster> cluster = std::move(opened).value();

  for (uint64_t t = 1; t <= num_tenants; ++t) {
    if (!cluster->Write(t, OneRow(t, 1000)).ok()) {
      std::fprintf(stderr, "seed write failed\n");
      return 1;
    }
  }
  if (!cluster->StartMonitor({/*poll_interval_ms=*/5}).ok()) {
    std::fprintf(stderr, "monitor start failed\n");
    return 1;
  }

  std::vector<Bucket> buckets(duration_ms / bucket_ms + 2);
  std::vector<Window> windows;
  Random rng(seed);
  workload::ZipfianGenerator tenants(num_tenants, 0.9, seed);
  const auto start = std::chrono::steady_clock::now();
  auto elapsed_ms = [&] {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - start)
        .count();
  };

  enum FaultKind { kWedge, kKill, kBrownout, kRejoin };
  struct Event {
    double fraction;
    FaultKind kind;
    bool fired = false;
  };
  std::vector<Event> events = {
      {0.15, kWedge}, {0.35, kKill}, {0.55, kBrownout}, {0.75, kRejoin}};
  auto live_worker = [&](uint32_t from) {
    for (uint32_t probe = 0; probe < num_workers; ++probe) {
      const uint32_t id = (from + probe) % num_workers;
      if (cluster->worker(id) != nullptr) return id;
    }
    return from;
  };
  auto placement_healthy = [&] {
    const cluster::Controller::PlacementView view =
        cluster->controller()->PlacementSnapshot();
    for (const uint32_t owner : view.shard_to_worker) {
      if (owner >= view.worker_alive.size() || !view.worker_alive[owner] ||
          cluster->worker(owner) == nullptr) {
        return false;
      }
    }
    return true;
  };

  int consecutive_ok = 0;
  int64_t brownout_end_us = 0;
  int64_t next_ts = 2000;
  while (elapsed_ms() < duration_ms) {
    for (Event& event : events) {
      if (event.fired ||
          elapsed_ms() < static_cast<int64_t>(event.fraction * duration_ms)) {
        continue;
      }
      event.fired = true;
      switch (event.kind) {
        case kWedge: {
          windows.push_back({elapsed_ms(), -1, "wedge"});
          const uint32_t target = live_worker(rng.Uniform(num_workers));
          cluster->PauseMonitor();
          cluster::Worker* worker = cluster->worker(target);
          if (worker != nullptr) {
            worker->InjectReplicaSyncError(static_cast<int>(rng.Uniform(3)))
                .IgnoreError();
          }
          cluster->ResumeMonitor();
          break;
        }
        case kKill: {
          windows.push_back({elapsed_ms(), -1, "kill"});
          cluster->KillWorker(live_worker(rng.Uniform(num_workers)))
              .IgnoreError();
          break;
        }
        case kBrownout: {
          windows.push_back({elapsed_ms(), -1, "brownout"});
          const int64_t now_us = SystemClock::Default()->NowMicros();
          brownout_end_us = now_us + 150'000;
          store.SetBrownout(now_us, brownout_end_us);
          cluster->RunBuildPass().status().IgnoreError();
          break;
        }
        case kRejoin: {
          windows.push_back({elapsed_ms(), -1, "rejoin"});
          for (uint32_t id = 0; id < num_workers; ++id) {
            if (cluster->worker(id) == nullptr &&
                !cluster->controller()->WorkerAlive(id)) {
              cluster->RestartWorker(id).IgnoreError();
            }
          }
          break;
        }
      }
    }

    const uint64_t tenant = 1 + tenants.Next();
    const int64_t t_ms = elapsed_ms();
    const Status status = cluster->Write(tenant, OneRow(tenant, next_ts++));
    const size_t bucket = std::min<size_t>(
        static_cast<size_t>(t_ms / bucket_ms), buckets.size() - 1);
    ++buckets[bucket].attempts;
    if (status.ok()) {
      ++buckets[bucket].successes;
      ++consecutive_ok;
    } else {
      consecutive_ok = 0;
    }
    for (Window& window : windows) {
      if (window.end_ms >= 0) continue;
      if (std::string(window.kind) == "brownout" &&
          SystemClock::Default()->NowMicros() < brownout_end_us) {
        continue;
      }
      if (consecutive_ok >= 24 && placement_healthy()) {
        window.end_ms = elapsed_ms();
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (Window& window : windows) {
    if (window.end_ms < 0) window.end_ms = duration_ms;
  }
  cluster->StopMonitor();

  // Aggregate availability, overall and outside the (bucket-padded) fault
  // windows — the committed acceptance number.
  auto in_fault_window = [&](int64_t from_ms, int64_t to_ms) {
    for (const Window& window : windows) {
      if (from_ms < window.end_ms + bucket_ms &&
          to_ms > window.start_ms - bucket_ms) {
        return true;
      }
    }
    return false;
  };
  int64_t total_attempts = 0, total_successes = 0;
  int64_t clean_attempts = 0, clean_successes = 0;
  std::string bucket_json;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i].attempts == 0) continue;
    const int64_t from_ms = static_cast<int64_t>(i) * bucket_ms;
    const bool faulted = in_fault_window(from_ms, from_ms + bucket_ms);
    total_attempts += buckets[i].attempts;
    total_successes += buckets[i].successes;
    if (!faulted) {
      clean_attempts += buckets[i].attempts;
      clean_successes += buckets[i].successes;
    }
    if (!bucket_json.empty()) bucket_json += ",\n";
    bucket_json += "    {\"t_ms\": " + std::to_string(from_ms) +
                   ", \"attempts\": " + std::to_string(buckets[i].attempts) +
                   ", \"successes\": " + std::to_string(buckets[i].successes) +
                   ", \"rate\": " +
                   JsonNum(static_cast<double>(buckets[i].successes) /
                           static_cast<double>(buckets[i].attempts)) +
                   ", \"in_fault_window\": " + (faulted ? "true" : "false") +
                   "}";
  }
  std::string window_json;
  for (const Window& window : windows) {
    if (!window_json.empty()) window_json += ",\n";
    window_json += "    {\"kind\": \"" + std::string(window.kind) +
                   "\", \"start_ms\": " + std::to_string(window.start_ms) +
                   ", \"end_ms\": " + std::to_string(window.end_ms) + "}";
  }
  const double availability_overall =
      total_attempts == 0 ? 0.0
                          : static_cast<double>(total_successes) /
                                static_cast<double>(total_attempts);
  const double availability_outside =
      clean_attempts == 0 ? 0.0
                          : static_cast<double>(clean_successes) /
                                static_cast<double>(clean_attempts);

  char overall_buf[32], outside_buf[32];
  std::snprintf(overall_buf, sizeof(overall_buf), "%.4f",
                availability_overall);
  std::snprintf(outside_buf, sizeof(outside_buf), "%.4f",
                availability_outside);
  std::string json = "{\n  \"bench\": \"soak\",\n";
  json += "  \"soak_seconds\": " + std::to_string(soak_seconds) + ",\n";
  json += "  \"bucket_ms\": " + std::to_string(bucket_ms) + ",\n";
  json += "  \"workers\": " + std::to_string(num_workers) + ",\n";
  json += "  \"write_attempts\": " + std::to_string(total_attempts) + ",\n";
  json += "  \"write_successes\": " + std::to_string(total_successes) + ",\n";
  json += "  \"availability_overall\": " + std::string(overall_buf) + ",\n";
  json += "  \"availability_outside_faults\": " + std::string(outside_buf) +
          ",\n";
  json += "  \"fault_windows\": [\n" + window_json + "\n  ],\n";
  json += "  \"buckets\": [\n" + bucket_json + "\n  ]\n}";
  logstore::bench::WriteBenchJson("BENCH_soak.json", json);

  std::printf("availability overall: %s, outside fault windows: %s\n",
              overall_buf, outside_buf);
  cluster.reset();
  std::filesystem::remove_all(dir);
  if (availability_outside < 0.99) {
    std::fprintf(stderr,
                 "availability outside fault windows %.4f below the 0.99 "
                 "floor\n",
                 availability_outside);
    return 1;
  }
  return 0;
}
