// Figure 11 (and Figure 2): tenant data-volume distribution under the
// Zipfian workload generator. The paper plots row count vs tenant rank at
// theta = 0.99 for 1000 tenants, matching the production skew.
//
// Prints rank/row-count pairs (log-log straight line expected) and the
// share concentration of the head.

#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.h"
#include "workload/zipfian.h"

int main() {
  const uint64_t kTenants = 1000;
  const uint64_t kTotalRows = 100'000'000;  // paper's y-axis reaches 100M

  printf("=== Figure 11: tenant row-count distribution (theta = 0.99) ===\n");
  printf("%-10s %-14s %-10s\n", "rank", "rows", "share");

  const auto shares = logstore::workload::ZipfianShares(kTenants, 0.99);
  double cumulative_top10 = 0;
  double cumulative_top100 = 0;
  for (uint64_t rank = 0; rank < kTenants; ++rank) {
    if (rank < 10) cumulative_top10 += shares[rank];
    if (rank < 100) cumulative_top100 += shares[rank];
    // Log-spaced ranks, like the paper's log-scale x axis.
    const bool print = rank < 10 || (rank < 100 && rank % 10 == 0) ||
                       rank % 100 == 0 || rank == kTenants - 1;
    if (print) {
      printf("%-10" PRIu64 " %-14.0f %-10.5f\n", rank + 1,
             shares[rank] * static_cast<double>(kTotalRows), shares[rank]);
    }
  }

  printf("\nhead concentration: top 10 tenants hold %.1f%%, top 100 hold "
         "%.1f%% of all rows\n",
         100 * cumulative_top10, 100 * cumulative_top100);

  // Sampled generation agrees with the analytic shares.
  printf("\nsampled vs analytic share (1M samples):\n");
  logstore::workload::ZipfianGenerator gen(kTenants, 0.99, 42);
  std::vector<uint64_t> counts(kTenants, 0);
  const int kSamples = 1'000'000;
  for (int i = 0; i < kSamples; ++i) counts[gen.Next()]++;
  printf("%-10s %-12s %-12s\n", "rank", "sampled", "analytic");
  for (uint64_t rank : {0ull, 1ull, 9ull, 99ull, 999ull}) {
    printf("%-10" PRIu64 " %-12.5f %-12.5f\n", rank + 1,
           static_cast<double>(counts[rank]) / kSamples, shares[rank]);
  }

  printf("\n(uniform comparison, theta = 0)\n");
  const auto uniform = logstore::workload::ZipfianShares(kTenants, 0.0);
  printf("theta=0   rank 1 share %.5f vs rank 1000 share %.5f\n", uniform[0],
         uniform[kTenants - 1]);

  // Shares are small fractions; the 2-decimal JsonNum would flatten them.
  auto share_num = [](double v) {
    char buf[64];
    snprintf(buf, sizeof(buf), "%.6f", v);
    return std::string(buf);
  };
  std::string json = "{\n  \"bench\": \"fig11_distribution\",\n";
  json += "  \"tenants\": " + std::to_string(kTenants) + ",\n";
  json += "  \"theta\": 0.99,\n";
  json += "  \"top10_share\": " + share_num(cumulative_top10) + ",\n";
  json += "  \"top100_share\": " + share_num(cumulative_top100) + ",\n";
  json += "  \"ranks\": [\n";
  const uint64_t kJsonRanks[] = {0, 1, 9, 99, 999};
  for (size_t i = 0; i < 5; ++i) {
    const uint64_t rank = kJsonRanks[i];
    json += "    {\"rank\": " + std::to_string(rank + 1) +
            ", \"analytic_share\": " + share_num(shares[rank]) +
            ", \"sampled_share\": " +
            share_num(static_cast<double>(counts[rank]) / kSamples) + "}";
    json += (i + 1 < 5) ? ",\n" : "\n";
  }
  json += "  ],\n";
  json += "  \"uniform_rank1_share\": " + share_num(uniform[0]) + "\n}";
  logstore::bench::WriteBenchJson("BENCH_fig11.json", json);
  return 0;
}
