// Vectorized scan-kernel sweep (§15): residual full scans (data skipping
// OFF, so every column block of every predicate column is decoded and
// filtered) with the selection-bitmap kernels against the row-at-a-time
// scalar baseline, cold (fresh engine) and warm (object bytes cached; the
// per-execution decode + filter still run, isolating the CPU path). A
// second section measures aggregation pushdown against the broker-side
// rows-then-aggregate strategy it replaces.
//
// Emits BENCH_scan.json (+ BENCH_scan.metrics.json with the registry dump,
// including the query.vectorized.* cells) for the perf-smoke CI gate.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "query/aggregation.h"
#include "query_bench_common.h"

using namespace logstore;
using namespace logstore::bench;

namespace {

struct ScanCase {
  std::string name;
  query::LogQuery query;
};

struct ScanMeasure {
  double cold_ms = 0;
  double warm_ms = 0;  // average of the warm repeats
  uint64_t rows_matched = 0;
  uint64_t vectorized_rows_scanned = 0;
};

query::EngineOptions ScanOptions(bool vectorized, int threads) {
  query::EngineOptions options;
  options.use_data_skipping = false;  // full residual scan on every block
  options.use_vectorized = vectorized;
  options.query_threads = threads;
  options.prefetch_threads = 8;
  options.io_block_size = 64 * 1024;
  options.cache_options.memory_capacity_bytes = 512ull << 20;
  options.cache_options.ssd_dir.clear();
  return options;
}

// Cold: best of `cold_repeats` fresh-engine first executions (min, the
// usual CPU-bench noise filter). Warm: best of `warm_repeats` re-runs on
// the last engine (object bytes cached; decode + filter still execute).
ScanMeasure RunScan(Dataset* dataset, const query::LogQuery& query,
                    bool vectorized, int threads, int cold_repeats,
                    int warm_repeats) {
  ScanMeasure m;
  m.cold_ms = 1e18;
  std::unique_ptr<query::QueryEngine> engine;
  for (int i = 0; i < cold_repeats; ++i) {
    auto opened = query::QueryEngine::Open(dataset->store.get(),
                                           ScanOptions(vectorized, threads));
    if (!opened.ok()) abort();
    engine = std::move(opened).value();
    const int64_t start = NowUs();
    auto r = engine->Execute(query, dataset->map);
    if (!r.ok()) abort();
    m.cold_ms = std::min(m.cold_ms, (NowUs() - start) / 1000.0);
    m.rows_matched = r->stats.exec.rows_matched;
    m.vectorized_rows_scanned = r->stats.exec.vectorized_rows_scanned;
  }
  m.warm_ms = 1e18;
  for (int i = 0; i < warm_repeats; ++i) {
    const int64_t start = NowUs();
    auto r = engine->Execute(query, dataset->map);
    if (!r.ok()) abort();
    m.warm_ms = std::min(m.warm_ms, (NowUs() - start) / 1000.0);
  }
  return m;
}

}  // namespace

int main() {
  const bool smoke = BenchSmoke();
  const int kColdRepeats = smoke ? 2 : 3;
  const int kWarmRepeats = smoke ? 3 : 7;
  // query_threads stays 1: the sweep isolates the per-block kernels; the
  // parallel/scatter axes are measured by the fig16/fig17 benches.
  const int kThreads[] = {1};

  DatasetOptions data_options;
  data_options.num_tenants = 20;  // Zipfian: tenant 0 holds the bulk
  data_options.total_rows = smoke ? 120'000 : 800'000;
  data_options.rows_per_column_block = 2048;

  printf("building dataset (%llu rows)...%s\n",
         static_cast<unsigned long long>(data_options.total_rows),
         smoke ? " (smoke)" : "");
  Dataset dataset;
  BuildDataset(data_options, /*simulate_oss=*/false, &dataset);
  const int64_t history = data_options.history_micros;

  // Full-history scans over the largest tenant, one per kernel shape plus
  // the paper's combined template. limit bounds the gather (the residual
  // scan itself is limit-independent), so the filter path dominates.
  std::vector<ScanCase> cases;
  {
    query::LogQuery base;
    base.tenant_id = 0;
    base.ts_min = 0;
    base.ts_max = history;
    base.select_columns = {"ts"};
    base.limit = 1000;

    ScanCase int_ge{"int_ge", base};
    int_ge.query.predicates.push_back(
        query::Predicate::Int64Compare("latency", query::CompareOp::kGe, 100));
    cases.push_back(int_ge);

    ScanCase int_band{"int_band", base};
    int_band.query.predicates.push_back(
        query::Predicate::Int64Compare("latency", query::CompareOp::kGe, 300));
    int_band.query.predicates.push_back(
        query::Predicate::Int64Compare("latency", query::CompareOp::kLt, 1500));
    cases.push_back(int_band);

    ScanCase str_eq{"str_eq", base};
    str_eq.query.predicates.push_back(
        query::Predicate::StringEq("fail", "false"));
    cases.push_back(str_eq);

    ScanCase match{"match", base};
    match.query.predicates.push_back(
        query::Predicate::Match("log", "timeout"));
    cases.push_back(match);

    ScanCase mixed{"mixed", base};
    mixed.query.predicates.push_back(
        query::Predicate::StringEq("ip", "192.168.1.8"));
    mixed.query.predicates.push_back(
        query::Predicate::Int64Compare("latency", query::CompareOp::kGe, 100));
    mixed.query.predicates.push_back(
        query::Predicate::StringEq("fail", "false"));
    cases.push_back(mixed);
  }

  printf("\n=== full-scan kernels: vectorized vs row-at-a-time ===\n");
  printf("%-10s %-8s %-12s %-12s %-9s %-12s %-12s %-9s %-10s\n", "predicate",
         "threads", "scalar", "vector", "speedup", "scalar", "vector",
         "speedup", "rows");
  printf("%-10s %-8s %-12s %-12s %-9s %-12s %-12s %-9s %-10s\n", "", "",
         "cold(ms)", "cold(ms)", "cold", "warm(ms)", "warm(ms)", "warm", "");

  std::string scans_json;
  for (const ScanCase& c : cases) {
    for (int threads : kThreads) {
      const ScanMeasure scalar =
          RunScan(&dataset, c.query, /*vectorized=*/false, threads,
                  kColdRepeats, kWarmRepeats);
      const ScanMeasure vec = RunScan(&dataset, c.query, /*vectorized=*/true,
                                      threads, kColdRepeats, kWarmRepeats);
      const double cold_speedup = scalar.cold_ms / std::max(0.001, vec.cold_ms);
      const double warm_speedup = scalar.warm_ms / std::max(0.001, vec.warm_ms);
      printf("%-10s %-8d %-12.2f %-12.2f %-9.2f %-12.2f %-12.2f %-9.2f %-10llu\n",
             c.name.c_str(), threads, scalar.cold_ms, vec.cold_ms,
             cold_speedup, scalar.warm_ms, vec.warm_ms, warm_speedup,
             static_cast<unsigned long long>(vec.rows_matched));
      if (!scans_json.empty()) scans_json += ",";
      scans_json += "{\"predicate\":\"" + c.name + "\"";
      scans_json += ",\"threads\":" + std::to_string(threads);
      scans_json += ",\"scalar_cold_ms\":" + JsonNum(scalar.cold_ms);
      scans_json += ",\"vectorized_cold_ms\":" + JsonNum(vec.cold_ms);
      scans_json += ",\"speedup_cold\":" + JsonNum(cold_speedup);
      scans_json += ",\"scalar_warm_ms\":" + JsonNum(scalar.warm_ms);
      scans_json += ",\"vectorized_warm_ms\":" + JsonNum(vec.warm_ms);
      scans_json += ",\"speedup_warm\":" + JsonNum(warm_speedup);
      scans_json +=
          ",\"rows_matched\":" + std::to_string(vec.rows_matched);
      scans_json += ",\"vectorized_rows_scanned\":" +
                    std::to_string(vec.vectorized_rows_scanned);
      scans_json += "}";
    }
  }

  // Aggregation pushdown vs the broker-side strategy it replaces: ship all
  // matching rows to the broker and aggregate there (select the aggregated
  // column, no limit) against folding partial aggregates below the merge.
  printf("\n=== aggregation pushdown vs broker-side rows+aggregate ===\n");
  printf("%-14s %-14s %-14s %-9s %-12s\n", "aggregate", "broker(ms)",
         "pushdown(ms)", "speedup", "rows");
  std::string agg_json;
  struct AggCase {
    std::string name;
    query::Aggregate agg;
    std::string column;  // broker-side select list
  };
  const AggCase agg_cases[] = {
      {"count", query::Aggregate::Count(), "ts"},
      {"sum_latency", query::Aggregate::Sum("latency"), "latency"},
      {"group_ip", query::Aggregate::GroupCount("ip"), "ip"},
  };
  for (const AggCase& c : agg_cases) {
    query::LogQuery rows_query;
    rows_query.tenant_id = 0;
    rows_query.ts_min = 0;
    rows_query.ts_max = history;
    rows_query.predicates.push_back(
        query::Predicate::StringEq("fail", "false"));
    rows_query.select_columns = {c.column};
    rows_query.limit = 0;

    auto engine = query::QueryEngine::Open(dataset.store.get(),
                                           ScanOptions(true, 8));
    if (!engine.ok()) abort();
    // Warm the caches once so both strategies measure the CPU path.
    if (!(*engine)->Execute(rows_query, dataset.map).ok()) abort();

    double broker_ms = 0, pushdown_ms = 0;
    uint64_t rows_matched = 0;
    for (int i = 0; i < kWarmRepeats; ++i) {
      int64_t start = NowUs();
      auto rows = (*engine)->Execute(rows_query, dataset.map);
      if (!rows.ok()) abort();
      // The broker-side fold is part of the strategy being measured.
      const auto values = query::QueryEngine::Column(*rows, c.column);
      if (c.agg.kind == query::Aggregate::Kind::kGroupCount) {
        (void)query::GroupCountTopK(values, 10);
      } else {
        (void)query::RollupInt64(values);
      }
      broker_ms += (NowUs() - start) / 1000.0;
      rows_matched = rows->stats.exec.rows_matched;

      query::LogQuery agg_query = rows_query;
      agg_query.select_columns.clear();
      agg_query.agg = c.agg;
      start = NowUs();
      auto pushed = (*engine)->Execute(agg_query, dataset.map);
      if (!pushed.ok()) abort();
      if (c.agg.kind == query::Aggregate::Kind::kGroupCount) {
        (void)pushed->agg.TopK(10);
      }
      pushdown_ms += (NowUs() - start) / 1000.0;
    }
    broker_ms /= kWarmRepeats;
    pushdown_ms /= kWarmRepeats;
    const double speedup = broker_ms / std::max(0.001, pushdown_ms);
    printf("%-14s %-14.2f %-14.2f %-9.2f %-12llu\n", c.name.c_str(),
           broker_ms, pushdown_ms, speedup,
           static_cast<unsigned long long>(rows_matched));
    if (!agg_json.empty()) agg_json += ",";
    agg_json += "{\"aggregate\":\"" + c.name + "\"";
    agg_json += ",\"broker_ms\":" + JsonNum(broker_ms);
    agg_json += ",\"pushdown_ms\":" + JsonNum(pushdown_ms);
    agg_json += ",\"speedup\":" + JsonNum(speedup);
    agg_json += ",\"rows_matched\":" + std::to_string(rows_matched);
    agg_json += "}";
  }

  std::string json = "{\"smoke\":" + std::string(smoke ? "1" : "0");
  json += ",\"total_rows\":" + std::to_string(data_options.total_rows);
  json += ",\"warm_repeats\":" + std::to_string(kWarmRepeats);
  json += ",\"scans\":[" + scans_json + "]";
  json += ",\"aggregation\":[" + agg_json + "]}";
  WriteBenchJson("BENCH_scan.json", json);
  return 0;
}
