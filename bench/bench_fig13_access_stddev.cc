// Figure 13: standard deviation of shard accesses (a) and worker accesses
// (b) before vs after balancing with the max-flow algorithm, as the skew
// factor grows.
//
// Expected shape (paper): before-balancing stddev grows sharply with theta;
// after max-flow it stays low (paper reports ~2.8x lower shard stddev and
// ~5x lower worker stddev at high skew). At low theta (<= 0.4) balancing
// changes little.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.h"
#include "cluster/traffic_sim.h"

using logstore::cluster::BalancePolicy;
using logstore::cluster::TrafficSimOptions;
using logstore::cluster::TrafficSimulator;

int main() {
  const double kThetas[] = {0.0, 0.2, 0.4, 0.6, 0.8, 0.99};

  printf("=== Figure 13: access standard deviation, before vs after "
         "max-flow ===\n");
  printf("%-8s  %-16s %-16s %-8s  %-16s %-16s %-8s\n", "theta",
         "shard-before", "shard-after", "ratio", "worker-before",
         "worker-after", "ratio");

  struct Row {
    double theta, shard_before, shard_after, shard_ratio;
    double worker_before, worker_after, worker_ratio;
  };
  std::vector<Row> rows;

  for (double theta : kThetas) {
    TrafficSimOptions options;
    options.num_workers = 24;
    options.shards_per_worker = 4;
    options.num_tenants = 1000;
    options.theta = theta;
    options.policy = BalancePolicy::kMaxFlow;

    TrafficSimulator sim(options);
    const auto before = sim.MeasureUnbalancedRound();
    const auto after = sim.Run(25, 10);

    const double shard_ratio =
        after.ShardAccessStddev() > 0
            ? before.ShardAccessStddev() / after.ShardAccessStddev()
            : 0;
    const double worker_ratio =
        after.WorkerAccessStddev() > 0
            ? before.WorkerAccessStddev() / after.WorkerAccessStddev()
            : 0;
    printf("%-8.2f  %-16.0f %-16.0f %-8.2f  %-16.0f %-16.0f %-8.2f\n", theta,
           before.ShardAccessStddev(), after.ShardAccessStddev(), shard_ratio,
           before.WorkerAccessStddev(), after.WorkerAccessStddev(),
           worker_ratio);
    rows.push_back({theta, before.ShardAccessStddev(),
                    after.ShardAccessStddev(), shard_ratio,
                    before.WorkerAccessStddev(), after.WorkerAccessStddev(),
                    worker_ratio});
  }

  using logstore::bench::JsonNum;
  std::string json = "{\n  \"bench\": \"fig13_access_stddev\",\n";
  json += "  \"points\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    json += "    {\"theta\": " + JsonNum(r.theta) +
            ", \"shard_stddev_before\": " + JsonNum(r.shard_before) +
            ", \"shard_stddev_after\": " + JsonNum(r.shard_after) +
            ", \"shard_ratio\": " + JsonNum(r.shard_ratio) +
            ", \"worker_stddev_before\": " + JsonNum(r.worker_before) +
            ", \"worker_stddev_after\": " + JsonNum(r.worker_after) +
            ", \"worker_ratio\": " + JsonNum(r.worker_ratio) + "}";
    json += (i + 1 < rows.size()) ? ",\n" : "\n";
  }
  json += "  ]\n}";
  logstore::bench::WriteBenchJson("BENCH_fig13.json", json);
  return 0;
}
