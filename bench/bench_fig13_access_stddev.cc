// Figure 13: standard deviation of shard accesses (a) and worker accesses
// (b) before vs after balancing with the max-flow algorithm, as the skew
// factor grows.
//
// Expected shape (paper): before-balancing stddev grows sharply with theta;
// after max-flow it stays low (paper reports ~2.8x lower shard stddev and
// ~5x lower worker stddev at high skew). At low theta (<= 0.4) balancing
// changes little.

#include <cstdio>

#include "cluster/traffic_sim.h"

using logstore::cluster::BalancePolicy;
using logstore::cluster::TrafficSimOptions;
using logstore::cluster::TrafficSimulator;

int main() {
  const double kThetas[] = {0.0, 0.2, 0.4, 0.6, 0.8, 0.99};

  printf("=== Figure 13: access standard deviation, before vs after "
         "max-flow ===\n");
  printf("%-8s  %-16s %-16s %-8s  %-16s %-16s %-8s\n", "theta",
         "shard-before", "shard-after", "ratio", "worker-before",
         "worker-after", "ratio");

  for (double theta : kThetas) {
    TrafficSimOptions options;
    options.num_workers = 24;
    options.shards_per_worker = 4;
    options.num_tenants = 1000;
    options.theta = theta;
    options.policy = BalancePolicy::kMaxFlow;

    TrafficSimulator sim(options);
    const auto before = sim.MeasureUnbalancedRound();
    const auto after = sim.Run(25, 10);

    const double shard_ratio =
        after.ShardAccessStddev() > 0
            ? before.ShardAccessStddev() / after.ShardAccessStddev()
            : 0;
    const double worker_ratio =
        after.WorkerAccessStddev() > 0
            ? before.WorkerAccessStddev() / after.WorkerAccessStddev()
            : 0;
    printf("%-8.2f  %-16.0f %-16.0f %-8.2f  %-16.0f %-16.0f %-8.2f\n", theta,
           before.ShardAccessStddev(), after.ShardAccessStddev(), shard_ratio,
           before.WorkerAccessStddev(), after.WorkerAccessStddev(),
           worker_ratio);
  }
  return 0;
}
