#ifndef LOGSTORE_BENCH_QUERY_BENCH_COMMON_H_
#define LOGSTORE_BENCH_QUERY_BENCH_COMMON_H_

// Shared dataset builder for the query-optimization benches (Figures
// 15-17): per-tenant archived LogBlocks on an object store, with Zipfian
// tenant sizes (theta = 0.99) as in §6.3 ("test data with a history of 48
// hours for 1000 tenants"), scaled down to run on a laptop.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.h"
#include "cluster/data_builder.h"
#include "common/clock.h"
#include "logblock/logblock_map.h"
#include "objectstore/memory_object_store.h"
#include "objectstore/simulated_object_store.h"
#include "query/engine.h"
#include "rowstore/row_store.h"
#include "workload/loggen.h"
#include "workload/querygen.h"
#include "workload/zipfian.h"

namespace logstore::bench {

struct DatasetOptions {
  uint32_t num_tenants = 100;
  double theta = 0.99;
  uint64_t total_rows = 1'000'000;
  int64_t history_micros = 48ll * 3600 * 1'000'000;  // 48 hours
  uint32_t rows_per_column_block = 2048;
  uint32_t max_rows_per_logblock = 100'000;
};

struct Dataset {
  std::unique_ptr<objectstore::ObjectStore> store;
  logblock::LogBlockMap map;
  DatasetOptions options;

  // The underlying store stats (hits the base store through any wrapper).
  objectstore::ObjectStoreStats& stats() { return store->stats(); }
};

// OSS-like latency model used by the figure benches.
inline objectstore::SimulatedStoreOptions OssLatency() {
  objectstore::SimulatedStoreOptions sim;
  sim.first_byte_latency_us = 2000;    // 2 ms per request
  sim.bandwidth_bytes_per_us = 50.0;  // 50 MB/s shared node bandwidth
  sim.max_concurrent_requests = 64;
  return sim;
}

// Builds the archived dataset into `*dataset` (LogBlockMap is not movable).
// With `simulate_oss` the store charges the OssLatency() cost model on
// every request (reads AND the build's uploads are charged; pass
// time_scale via `sim`).
inline void BuildDataset(const DatasetOptions& options, bool simulate_oss,
                         Dataset* dataset,
                         objectstore::SimulatedStoreOptions sim = OssLatency()) {
  dataset->options = options;
  auto base = std::make_unique<objectstore::MemoryObjectStore>();
  if (simulate_oss) {
    // Build uploads would dominate wall time; charge but do not sleep
    // during the build, then restore the scale for queries.
    dataset->store = std::make_unique<objectstore::SimulatedObjectStore>(
        std::move(base), sim);
  } else {
    dataset->store = std::move(base);
  }

  cluster::DataBuilderOptions builder_options;
  builder_options.max_rows_per_logblock = options.max_rows_per_logblock;
  builder_options.block_options.rows_per_block =
      options.rows_per_column_block;
  cluster::DataBuilder builder(dataset->store.get(), &dataset->map,
                               builder_options);

  const auto shares =
      workload::ZipfianShares(options.num_tenants, options.theta);
  workload::LogGenerator gen(77);
  rowstore::RowStore rows(gen.schema());
  for (uint32_t t = 0; t < options.num_tenants; ++t) {
    const uint32_t tenant_rows = static_cast<uint32_t>(
        shares[t] * static_cast<double>(options.total_rows));
    if (tenant_rows == 0) continue;
    // Split the history into a few chronological appends so large tenants
    // produce several time-disjoint LogBlocks (LogBlock-map pruning works).
    const int chunks = tenant_rows > 8000 ? 8 : 1;
    for (int c = 0; c < chunks; ++c) {
      const int64_t begin = options.history_micros * c / chunks;
      const int64_t end = options.history_micros * (c + 1) / chunks;
      rows.Append(t, gen.Generate(t, tenant_rows / chunks + 1, begin, end));
      auto built = builder.BuildOnce(&rows);
      if (!built.ok()) {
        fprintf(stderr, "dataset build failed: %s\n",
                built.status().ToString().c_str());
        abort();
      }
    }
  }
}

// Wall-clock helper.
inline int64_t NowUs() { return SystemClock::Default()->NowMicros(); }

// BenchSmoke(), JsonNum(), and WriteBenchJson() live in bench_json.h so the
// simulator benches can emit JSON without pulling in the dataset builder.

}  // namespace logstore::bench

#endif  // LOGSTORE_BENCH_QUERY_BENCH_COMMON_H_
